// Event algebra and compositor semantics (§3.1-§3.4): operators, the four
// SNOOP consumption policies, life-span GC, and validity intervals.
#include <gtest/gtest.h>

#include "core/events/compositor.h"
#include "core/events/event_expr.h"
#include "core/events/event_registry.h"

namespace reach {
namespace {

// Convenience: build primitive occurrences with increasing sequence.
class OccFactory {
 public:
  EventOccurrencePtr Make(EventTypeId type, TxnId txn = 1,
                          Timestamp ts = -1) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = type;
    occ->sequence = ++seq_;
    occ->timestamp = ts >= 0 ? ts : static_cast<Timestamp>(seq_ * 10);
    occ->txn = txn;
    return occ;
  }

 private:
  uint64_t seq_ = 0;
};

class AlgebraTest : public ::testing::Test {
 protected:
  // Register three primitive method events E1 E2 E3.
  void SetUp() override {
    e1_ = *registry_.RegisterMethodEvent("E1", "C", "m1");
    e2_ = *registry_.RegisterMethodEvent("E2", "C", "m2");
    e3_ = *registry_.RegisterMethodEvent("E3", "C", "m3");
  }

  EventTypeId DefineComposite(EventExprPtr expr, ConsumptionPolicy policy,
                              CompositeScope scope = CompositeScope::kSingleTxn,
                              Timestamp validity = 0) {
    static int n = 0;
    auto id = registry_.RegisterComposite("X" + std::to_string(++n), expr,
                                          scope, policy, validity);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  std::vector<EventOccurrencePtr> FeedAll(
      Compositor* c, const std::vector<EventOccurrencePtr>& stream) {
    std::vector<EventOccurrencePtr> out;
    for (const auto& occ : stream) c->Feed(occ, &out);
    return out;
  }

  EventRegistry registry_;
  OccFactory occ_;
  EventTypeId e1_, e2_, e3_;
};

// ---------------------------------------------------------------------------
// Expression validation and registry legality
// ---------------------------------------------------------------------------

TEST_F(AlgebraTest, ExprValidation) {
  EXPECT_TRUE(EventExpr::Prim(e1_)->Validate().ok());
  EXPECT_FALSE(EventExpr::Prim(kInvalidEventType)->Validate().ok());
  EXPECT_TRUE(EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_))
                  ->Validate()
                  .ok());
  EXPECT_FALSE(EventExpr::History(EventExpr::Prim(e1_), 0)->Validate().ok());
  EXPECT_EQ(EventExpr::Seq(EventExpr::Prim(e1_),
                           EventExpr::Or(EventExpr::Prim(e2_),
                                         EventExpr::Prim(e1_)))
                ->LeafTypes()
                .size(),
            2u);
}

TEST_F(AlgebraTest, CrossTxnCompositeRequiresValidity) {
  auto expr = EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_));
  auto bad = registry_.RegisterComposite("bad", expr, CompositeScope::kCrossTxn,
                                         ConsumptionPolicy::kChronicle, 0);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  auto good = registry_.RegisterComposite("good", expr,
                                          CompositeScope::kCrossTxn,
                                          ConsumptionPolicy::kChronicle, 1000);
  EXPECT_TRUE(good.ok());
}

TEST_F(AlgebraTest, ValidityInheritedFromConstituents) {
  auto inner = *registry_.RegisterComposite(
      "inner", EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle, 5000);
  // Outer composite with no explicit validity inherits the smallest one.
  auto outer = registry_.RegisterComposite(
      "outer", EventExpr::Seq(EventExpr::Prim(inner), EventExpr::Prim(e3_)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle, 0);
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(registry_.Find(*outer)->validity_us, 5000);
}

TEST_F(AlgebraTest, SingleTxnScopeRejectsTemporalLeaves) {
  auto timer = *registry_.RegisterPeriodicEvent("tick", 1000);
  auto bad = registry_.RegisterComposite(
      "bad1tx", EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(timer)),
      CompositeScope::kSingleTxn, ConsumptionPolicy::kChronicle, 0);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST_F(AlgebraTest, RegistryLookupsAndDuplicates) {
  EXPECT_TRUE(
      registry_.RegisterMethodEvent("E1dup", "C", "m1").status().IsAlreadyExists());
  EXPECT_TRUE(
      registry_.RegisterMethodEvent("E1", "C", "other").status().IsAlreadyExists());
  EXPECT_EQ(registry_.FindByName("E1")->id, e1_);
  EXPECT_EQ(registry_.FindDbEvent(SentryKind::kMethodAfter, "C", "m1"), e1_);
  EXPECT_EQ(registry_.FindDbEvent(SentryKind::kMethodAfter, "C", "zz"),
            kInvalidEventType);
}

// ---------------------------------------------------------------------------
// Sequence semantics under the four consumption policies (§3.4). The
// canonical example from the paper: E3 = (E1 ; E2) with arrivals
// e1, e1', e2.
// ---------------------------------------------------------------------------

TEST_F(AlgebraTest, SequenceRecentUsesLatestInitiator) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kRecent);
  Compositor c(registry_.Find(id));
  auto a1 = occ_.Make(e1_);   // e1
  auto a2 = occ_.Make(e1_);   // e1'
  auto b = occ_.Make(e2_);    // e2
  auto out = FeedAll(&c, {a1, a2, b});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0]->constituents.size(), 2u);
  EXPECT_EQ(out[0]->constituents[0]->sequence, a2->sequence);  // e1' used
  // Recent retains the initiator: another e2 pairs again.
  auto out2 = FeedAll(&c, {occ_.Make(e2_)});
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0]->constituents[0]->sequence, a2->sequence);
}

TEST_F(AlgebraTest, SequenceChronicleUsesOldestAndConsumes) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  auto a1 = occ_.Make(e1_);
  auto a2 = occ_.Make(e1_);
  auto out = FeedAll(&c, {a1, a2, occ_.Make(e2_)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents[0]->sequence, a1->sequence);  // oldest
  // a1 consumed; next terminator pairs with a2.
  auto out2 = FeedAll(&c, {occ_.Make(e2_)});
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0]->constituents[0]->sequence, a2->sequence);
  // Both consumed; a third terminator finds nothing.
  EXPECT_TRUE(FeedAll(&c, {occ_.Make(e2_)}).empty());
}

TEST_F(AlgebraTest, SequenceContinuousPairsAllOpenInitiators) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kContinuous);
  Compositor c(registry_.Find(id));
  auto out =
      FeedAll(&c, {occ_.Make(e1_), occ_.Make(e1_), occ_.Make(e2_)});
  EXPECT_EQ(out.size(), 2u);  // each open window closes
  // All consumed.
  EXPECT_TRUE(FeedAll(&c, {occ_.Make(e2_)}).empty());
}

TEST_F(AlgebraTest, SequenceCumulativeMergesAllInitiators) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kCumulative);
  Compositor c(registry_.Find(id));
  auto out =
      FeedAll(&c, {occ_.Make(e1_), occ_.Make(e1_), occ_.Make(e2_)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents.size(), 3u);  // both e1s + e2
}

TEST_F(AlgebraTest, SequenceRequiresStrictOrder) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  // Terminator before initiator: no composite.
  auto out = FeedAll(&c, {occ_.Make(e2_), occ_.Make(e1_)});
  EXPECT_TRUE(out.empty());
  EXPECT_GT(c.LivePartialCount(), 0u);
}

// ---------------------------------------------------------------------------
// Other operators
// ---------------------------------------------------------------------------

TEST_F(AlgebraTest, ConjunctionEitherOrder) {
  auto id = DefineComposite(
      EventExpr::And(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e2_), occ_.Make(e1_)}).size(), 1u);
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e1_), occ_.Make(e2_)}).size(), 1u);
}

TEST_F(AlgebraTest, DisjunctionFiresOnEither) {
  auto id = DefineComposite(
      EventExpr::Or(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e1_)}).size(), 1u);
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e2_)}).size(), 1u);
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e3_)}).size(), 0u);
}

TEST_F(AlgebraTest, NegationFiresWithoutNegatedEvent) {
  // E1; then E3 with no E2 in between.
  auto id = DefineComposite(
      EventExpr::Not(EventExpr::Prim(e1_), EventExpr::Prim(e2_),
                     EventExpr::Prim(e3_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  auto out = FeedAll(&c, {occ_.Make(e1_), occ_.Make(e3_)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents.size(), 2u);
}

TEST_F(AlgebraTest, NegationSuppressedByNegatedEvent) {
  auto id = DefineComposite(
      EventExpr::Not(EventExpr::Prim(e1_), EventExpr::Prim(e2_),
                     EventExpr::Prim(e3_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  auto out = FeedAll(&c, {occ_.Make(e1_), occ_.Make(e2_), occ_.Make(e3_)});
  EXPECT_TRUE(out.empty());
  // A new interval can still complete afterwards.
  auto out2 = FeedAll(&c, {occ_.Make(e1_), occ_.Make(e3_)});
  EXPECT_EQ(out2.size(), 1u);
}

TEST_F(AlgebraTest, ClosureCollectsBodiesUntilTerminator) {
  auto id = DefineComposite(
      EventExpr::Closure(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  auto out = FeedAll(
      &c, {occ_.Make(e1_), occ_.Make(e1_), occ_.Make(e1_), occ_.Make(e2_)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents.size(), 4u);  // 3 bodies + terminator
  // Bodies consumed; an immediate second terminator carries none.
  auto out2 = FeedAll(&c, {occ_.Make(e2_)});
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0]->constituents.size(), 1u);
}

TEST_F(AlgebraTest, HistoryFiresOnNthOccurrence) {
  auto id = DefineComposite(EventExpr::History(EventExpr::Prim(e1_), 3),
                            ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  EXPECT_TRUE(FeedAll(&c, {occ_.Make(e1_), occ_.Make(e1_)}).empty());
  auto out = FeedAll(&c, {occ_.Make(e1_)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents.size(), 3u);
  // Counter reset.
  EXPECT_TRUE(FeedAll(&c, {occ_.Make(e1_), occ_.Make(e1_)}).empty());
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e1_)}).size(), 1u);
}

TEST_F(AlgebraTest, NestedExpressions) {
  // (E1; E2) or history(E3, 2)
  auto id = DefineComposite(
      EventExpr::Or(EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
                    EventExpr::History(EventExpr::Prim(e3_), 2)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e1_), occ_.Make(e2_)}).size(), 1u);
  EXPECT_EQ(FeedAll(&c, {occ_.Make(e3_), occ_.Make(e3_)}).size(), 1u);
}

// ---------------------------------------------------------------------------
// Same-source correlation (event-parameter predicate extension)
// ---------------------------------------------------------------------------

TEST_F(AlgebraTest, SequenceSameSourceCorrelation) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_),
                     Correlation::kSameSource),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  Oid obj_a{1, 0, 1}, obj_b{2, 0, 1};
  auto mk = [&](EventTypeId t, Oid src) {
    auto occ = std::const_pointer_cast<EventOccurrence>(occ_.Make(t));
    occ->source = src;
    return EventOccurrencePtr(occ);
  };
  // e1 on A, then e2 on B: different objects, no composite.
  EXPECT_TRUE(FeedAll(&c, {mk(e1_, obj_a), mk(e2_, obj_b)}).empty());
  // e2 on A completes the pair for A.
  auto out = FeedAll(&c, {mk(e2_, obj_a)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents[0]->source, obj_a);
  EXPECT_EQ(out[0]->constituents[1]->source, obj_a);
}

TEST_F(AlgebraTest, HistorySameSourceCountsPerObject) {
  auto id = DefineComposite(
      EventExpr::History(EventExpr::Prim(e1_), 3, Correlation::kSameSource),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  Oid obj_a{1, 0, 1}, obj_b{2, 0, 1};
  auto mk = [&](Oid src) {
    auto occ = std::const_pointer_cast<EventOccurrence>(occ_.Make(e1_));
    occ->source = src;
    return EventOccurrencePtr(occ);
  };
  // Interleaved: 2 on A, 2 on B — neither object reached 3.
  EXPECT_TRUE(
      FeedAll(&c, {mk(obj_a), mk(obj_b), mk(obj_a), mk(obj_b)}).empty());
  // Third on A fires for A only.
  auto out = FeedAll(&c, {mk(obj_a)});
  ASSERT_EQ(out.size(), 1u);
  for (const auto& part : out[0]->constituents) {
    EXPECT_EQ(part->source, obj_a);
  }
  // B still needs one more.
  EXPECT_EQ(FeedAll(&c, {mk(obj_b)}).size(), 1u);
}

TEST_F(AlgebraTest, NegationSameSourceOnlyKillsCorrelatedIntervals) {
  auto id = DefineComposite(
      EventExpr::Not(EventExpr::Prim(e1_), EventExpr::Prim(e2_),
                     EventExpr::Prim(e3_), Correlation::kSameSource),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  Oid obj_a{1, 0, 1}, obj_b{2, 0, 1};
  auto mk = [&](EventTypeId t, Oid src) {
    auto occ = std::const_pointer_cast<EventOccurrence>(occ_.Make(t));
    occ->source = src;
    return EventOccurrencePtr(occ);
  };
  // Open intervals on A and B; negated event on A kills only A's.
  auto out = FeedAll(&c, {mk(e1_, obj_a), mk(e1_, obj_b), mk(e2_, obj_a),
                          mk(e3_, obj_a), mk(e3_, obj_b)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents[0]->source, obj_b);
}

// ---------------------------------------------------------------------------
// Life-span (§3.3)
// ---------------------------------------------------------------------------

TEST_F(AlgebraTest, SingleTxnInstancesAreIsolated) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle, CompositeScope::kSingleTxn);
  Compositor c(registry_.Find(id));
  // e1 in txn 1, e2 in txn 2: never composed under single-txn scope.
  auto out = FeedAll(&c, {occ_.Make(e1_, 1), occ_.Make(e2_, 2)});
  EXPECT_TRUE(out.empty());
  // Same txn composes.
  auto out2 = FeedAll(&c, {occ_.Make(e2_, 1)});
  EXPECT_EQ(out2.size(), 1u);
}

TEST_F(AlgebraTest, EotDiscardsSemiComposedEvents) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle, CompositeScope::kSingleTxn);
  Compositor c(registry_.Find(id));
  FeedAll(&c, {occ_.Make(e1_, 1)});
  EXPECT_EQ(c.LivePartialCount(), 1u);
  c.OnTxnEnd(1);
  EXPECT_EQ(c.LivePartialCount(), 0u);
  EXPECT_EQ(c.stats().discarded_at_eot, 1u);
  // The transaction's automaton is gone: a late e2 composes nothing.
  EXPECT_TRUE(FeedAll(&c, {occ_.Make(e2_, 1)}).empty());
}

TEST_F(AlgebraTest, ValidityIntervalExpiresPartials) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle, CompositeScope::kCrossTxn,
      /*validity=*/100);
  Compositor c(registry_.Find(id));
  std::vector<EventOccurrencePtr> out;
  c.Feed(occ_.Make(e1_, 1, /*ts=*/1000), &out);
  EXPECT_EQ(c.LivePartialCount(), 1u);
  // Terminator arrives 500us later: initiator expired (validity 100us).
  c.Feed(occ_.Make(e2_, 2, /*ts=*/1500), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(c.stats().expired_partials, 1u);
  // Within the interval it works.
  c.Feed(occ_.Make(e1_, 1, /*ts=*/2000), &out);
  c.Feed(occ_.Make(e2_, 2, /*ts=*/2050), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AlgebraTest, ExplicitExpireTick) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle, CompositeScope::kCrossTxn, 100);
  Compositor c(registry_.Find(id));
  std::vector<EventOccurrencePtr> out;
  c.Feed(occ_.Make(e1_, 1, 1000), &out);
  c.ExpireOlderThan(2000);
  EXPECT_EQ(c.LivePartialCount(), 0u);
}

TEST_F(AlgebraTest, ExpireOlderThanCountsExactlyTheCutoffVictims) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle, CompositeScope::kCrossTxn,
      /*validity=*/10'000);
  Compositor c(registry_.Find(id));
  std::vector<EventOccurrencePtr> out;
  c.Feed(occ_.Make(e1_, 1, /*ts=*/100), &out);
  c.Feed(occ_.Make(e1_, 2, /*ts=*/200), &out);
  c.Feed(occ_.Make(e1_, 3, /*ts=*/300), &out);
  EXPECT_EQ(c.LivePartialCount(), 3u);
  c.ExpireOlderThan(250);
  EXPECT_EQ(c.stats().expired_partials, 2u);
  EXPECT_EQ(c.LivePartialCount(), 1u);
  // The survivor (ts=300) still completes; chronicle picks it as oldest.
  c.Feed(occ_.Make(e2_, 4, /*ts=*/310), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->constituents[0]->timestamp, 300);
  EXPECT_EQ(c.stats().completions, 1u);
}

TEST_F(AlgebraTest, ExpireOlderThanUnderRecentPolicy) {
  // Recent keeps only the latest initiator alive as the pairing candidate,
  // but expiry must still GC (and count) every buffered partial.
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kRecent, CompositeScope::kCrossTxn,
      /*validity=*/10'000);
  Compositor c(registry_.Find(id));
  std::vector<EventOccurrencePtr> out;
  c.Feed(occ_.Make(e1_, 1, /*ts=*/100), &out);
  c.Feed(occ_.Make(e1_, 2, /*ts=*/200), &out);
  size_t live_before = c.LivePartialCount();
  EXPECT_GE(live_before, 1u);
  c.ExpireOlderThan(500);
  EXPECT_EQ(c.stats().expired_partials, live_before);
  EXPECT_EQ(c.LivePartialCount(), 0u);
  // Everything expired: a terminator alone composes nothing...
  c.Feed(occ_.Make(e2_, 3, /*ts=*/600), &out);
  EXPECT_TRUE(out.empty());
  // ...but a fresh initiator/terminator pair still works.
  c.Feed(occ_.Make(e1_, 4, /*ts=*/700), &out);
  c.Feed(occ_.Make(e2_, 5, /*ts=*/710), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AlgebraTest, EotStatsPerTxnAndCrossTxnUnaffected) {
  // Single-txn scope: EOT discards exactly the ending transaction's
  // partials and counts them; other transactions' automata are untouched.
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle, CompositeScope::kSingleTxn);
  Compositor c(registry_.Find(id));
  std::vector<EventOccurrencePtr> out;
  c.Feed(occ_.Make(e1_, 1), &out);
  c.Feed(occ_.Make(e1_, 2), &out);
  c.OnTxnEnd(1);
  EXPECT_EQ(c.stats().discarded_at_eot, 1u);
  EXPECT_EQ(c.LivePartialCount(), 1u);
  c.Feed(occ_.Make(e2_, 2), &out);
  EXPECT_EQ(out.size(), 1u);

  // Cross-txn scope: partials outlive transaction boundaries, so OnTxnEnd
  // must be a counted-nothing no-op.
  auto xid = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle, CompositeScope::kCrossTxn,
      /*validity=*/10'000);
  Compositor xc(registry_.Find(xid));
  std::vector<EventOccurrencePtr> xout;
  xc.Feed(occ_.Make(e1_, 7, /*ts=*/100), &xout);
  xc.OnTxnEnd(7);
  EXPECT_EQ(xc.stats().discarded_at_eot, 0u);
  EXPECT_EQ(xc.LivePartialCount(), 1u);
  xc.Feed(occ_.Make(e2_, 8, /*ts=*/150), &xout);
  EXPECT_EQ(xout.size(), 1u);
}

TEST_F(AlgebraTest, CompositeParamsComeFromTerminator) {
  auto id = DefineComposite(
      EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
      ConsumptionPolicy::kChronicle);
  Compositor c(registry_.Find(id));
  auto a = occ_.Make(e1_);
  auto b = occ_.Make(e2_);
  std::const_pointer_cast<EventOccurrence>(b)->params = {Value(42)};
  std::const_pointer_cast<EventOccurrence>(b)->source = Oid{3, 3, 3};
  auto out = FeedAll(&c, {a, b});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0]->params.size(), 1u);
  EXPECT_EQ(out[0]->params[0], Value(42));
  EXPECT_EQ(out[0]->source, (Oid{3, 3, 3}));
}

// ---------------------------------------------------------------------------
// Parameterized sweep: every operator completes under every policy.
// ---------------------------------------------------------------------------

class PolicySweepTest
    : public AlgebraTest,
      public ::testing::WithParamInterface<ConsumptionPolicy> {};

TEST_P(PolicySweepTest, AllOperatorsComplete) {
  ConsumptionPolicy policy = GetParam();
  struct Case {
    EventExprPtr expr;
    std::vector<EventTypeId> stream;
    size_t min_completions;
  };
  std::vector<Case> cases = {
      {EventExpr::Seq(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
       {e1_, e2_},
       1},
      {EventExpr::And(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
       {e2_, e1_},
       1},
      {EventExpr::Or(EventExpr::Prim(e1_), EventExpr::Prim(e2_)), {e2_}, 1},
      {EventExpr::Not(EventExpr::Prim(e1_), EventExpr::Prim(e2_),
                      EventExpr::Prim(e3_)),
       {e1_, e3_},
       1},
      {EventExpr::Closure(EventExpr::Prim(e1_), EventExpr::Prim(e2_)),
       {e1_, e1_, e2_},
       1},
      {EventExpr::History(EventExpr::Prim(e1_), 2), {e1_, e1_}, 1},
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    auto id = DefineComposite(cases[i].expr, policy);
    Compositor c(registry_.Find(id));
    std::vector<EventOccurrencePtr> stream;
    for (EventTypeId t : cases[i].stream) stream.push_back(occ_.Make(t));
    auto out = FeedAll(&c, stream);
    EXPECT_GE(out.size(), cases[i].min_completions)
        << "case " << i << " policy " << ConsumptionPolicyName(policy);
    for (const auto& comp : out) {
      EXPECT_EQ(comp->type, id);
      EXPECT_FALSE(comp->constituents.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweepTest,
    ::testing::Values(ConsumptionPolicy::kRecent,
                      ConsumptionPolicy::kChronicle,
                      ConsumptionPolicy::kContinuous,
                      ConsumptionPolicy::kCumulative),
    [](const ::testing::TestParamInfo<ConsumptionPolicy>& param_info) {
      return ConsumptionPolicyName(param_info.param);
    });

}  // namespace
}  // namespace reach
