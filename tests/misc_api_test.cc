// Smaller API surfaces: error paths, ToString helpers, bus introspection,
// dictionary listing, engine introspection.
#include <gtest/gtest.h>

#include "core/reach/reach_db.h"
#include "oodb/meta_bus.h"
#include "oodb/sentry.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

TEST(OpenErrorTest, UnwritablePathFails) {
  auto db = ReachDb::Open("/nonexistent_dir_xyz/sub/db");
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsIoError());
}

TEST(ToStringTest, HumanReadableForms) {
  EXPECT_EQ(Value(std::vector<Value>{Value(1), Value("x")}).ToString(),
            "[1, \"x\"]");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value().ToString(), "null");

  EventRegistry registry;
  auto e1 = *registry.RegisterMethodEvent("E1", "C", "m1");
  auto e2 = *registry.RegisterMethodEvent("E2", "C", "m2");
  auto expr = EventExpr::Seq(EventExpr::Prim(e1),
                             EventExpr::History(EventExpr::Prim(e2), 3));
  EXPECT_EQ(expr->ToString(), "seq(E" + std::to_string(e1) + ", history(E" +
                                  std::to_string(e2) + ", n=3))");

  EventOccurrence occ;
  occ.type = e1;
  occ.timestamp = 5;
  occ.sequence = 2;
  occ.txn = 7;
  EXPECT_NE(occ.ToString().find("txn=7"), std::string::npos);

  SentryEvent ev;
  ev.kind = SentryKind::kMethodAfter;
  ev.class_name = "River";
  ev.member = "update";
  EXPECT_EQ(ev.ToString(), "method-after River::update");
}

TEST(MetaBusTest, PolicyManagerNamesListed) {
  TempDir dir;
  auto db = Database::Open(dir.DbPath());
  ASSERT_TRUE(db.ok());
  auto names = (*db)->bus()->PolicyManagerNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "Change PM"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Indexing PM"),
            names.end());
}

TEST(DictionaryTest, NamesEnumerated) {
  TempDir dir;
  auto db = Database::Open(dir.DbPath());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      (*db)->types()->RegisterClass(ClassBuilder("Thing").Build()).ok());
  Session s(db->get());
  ASSERT_TRUE(s.Begin().ok());
  auto a = s.PersistNew("Thing", {});
  ASSERT_TRUE(s.Bind("alpha", *a).ok());
  ASSERT_TRUE(s.Bind("beta", *a).ok());
  ASSERT_TRUE(s.Commit().ok());
  auto names = (*db)->dictionary()->Names();
  ASSERT_TRUE(names.ok());
  // alpha, beta plus the __extent:: system binding.
  EXPECT_NE(std::find(names->begin(), names->end(), "alpha"), names->end());
  EXPECT_NE(std::find(names->begin(), names->end(), "beta"), names->end());
}

TEST(RuleEngineIntrospection, NamesStatsOptions) {
  TempDir dir;
  auto db = ReachDb::Open(dir.DbPath());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->RegisterClass(
                    ClassBuilder("T").Attribute("a", ValueType::kInt,
                                                Value(0)))
                  .ok());
  auto ev = (*db)->events()->DefineStateChangeEvent("a_set", "T", "a");
  for (const char* name : {"zeta", "alpha"}) {
    RuleSpec spec;
    spec.name = name;
    spec.event = *ev;
    spec.coupling = CouplingMode::kDeferred;
    spec.action = [](Session&, const EventOccurrence&) {
      return Status::OK();
    };
    ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());
  }
  auto names = (*db)->rules()->RuleNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");  // sorted
  EXPECT_TRUE((*db)->rules()->StatsOf("nope").status().IsNotFound());
  EXPECT_EQ((*db)->rules()->FindRule("nope"), nullptr);
  EXPECT_EQ((*db)->rules()->options().multi_rule_execution,
            RuleEngineOptions::Execution::kSerialRingSequence);
  // Duplicate names rejected.
  RuleSpec dup;
  dup.name = "alpha";
  dup.event = *ev;
  dup.action = [](Session&, const EventOccurrence&) { return Status::OK(); };
  EXPECT_TRUE((*db)->rules()->DefineRule(std::move(dup))
                  .status()
                  .IsAlreadyExists());
}

TEST(EventRegistryIntrospection, AllEventsSortedById) {
  TempDir dir;
  auto db = ReachDb::Open(dir.DbPath());
  ASSERT_TRUE(db.ok());
  (void)(*db)->events()->DefinePeriodicEvent("tick", 1000000);
  (void)(*db)->events()->DefineFlowEvent("on_commit",
                                         SentryKind::kTxnCommit);
  auto all = (*db)->events()->registry()->AllEvents();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_LT(all[0]->id, all[1]->id);
  EXPECT_EQ(all[0]->name, "tick");
}

TEST(SessionErrorPaths, OperationsOutsideTransactions) {
  TempDir dir;
  auto db = ReachDb::Open(dir.DbPath());
  ASSERT_TRUE(db.ok());
  ClassBuilder builder("T");
  ASSERT_TRUE((*db)->RegisterClass(builder).ok());
  Session s((*db)->database());
  EXPECT_TRUE(s.PersistNew("T", {}).status().IsFailedPrecondition());
  EXPECT_TRUE(s.Fetch(Oid{1, 0, 1}).status().IsFailedPrecondition());
  EXPECT_TRUE(s.Commit().IsFailedPrecondition());
  EXPECT_TRUE(s.Abort().IsFailedPrecondition());
  // Unknown class.
  ASSERT_TRUE(s.Begin().ok());
  EXPECT_TRUE(s.PersistNew("Nope", {}).status().IsNotFound());
  EXPECT_TRUE(s.PersistNew("T", {{"ghost", Value(1)}}).status().IsNotFound());
  ASSERT_TRUE(s.Commit().ok());
}

TEST(SentriedNative, ConstMethodAndResultCapture) {
  MetaBus bus;
  struct Gauge {
    int reading() const { return 42; }
  };
  struct CapturePm : PolicyManager {
    std::string name() const override { return "cap"; }
    void OnEvent(const SentryEvent& event) override { last = event; }
    SentryEvent last;
  } pm;
  bus.Subscribe(&pm, SentryKind::kMethodAfter, "Gauge", "reading");
  const Sentried<Gauge> gauge(&bus, "Gauge", Gauge{});
  int v = gauge.Call("reading", &Gauge::reading);
  EXPECT_EQ(v, 42);
  EXPECT_EQ(pm.last.result, Value(42));
}

}  // namespace
}  // namespace reach
