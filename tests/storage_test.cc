#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

TEST(DiskManagerTest, AllocateReadWrite) {
  TempDir dir;
  auto dm = DiskManager::Open(dir.DbPath() + ".db");
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ((*dm)->num_pages(), 0u);
  auto p0 = (*dm)->AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  char data[kPageSize];
  std::fill(data, data + kPageSize, 'x');
  ASSERT_TRUE((*dm)->WritePage(0, data).ok());
  char in[kPageSize];
  ASSERT_TRUE((*dm)->ReadPage(0, in).ok());
  EXPECT_EQ(memcmp(data, in, kPageSize), 0);
}

TEST(DiskManagerTest, OutOfRangeAccessRejected) {
  TempDir dir;
  auto dm = DiskManager::Open(dir.DbPath() + ".db");
  char buf[kPageSize];
  EXPECT_TRUE((*dm)->ReadPage(3, buf).IsOutOfRange());
  EXPECT_TRUE((*dm)->WritePage(3, buf).IsOutOfRange());
}

TEST(DiskManagerTest, ReopenPreservesPages) {
  TempDir dir;
  std::string path = dir.DbPath() + ".db";
  {
    auto dm = DiskManager::Open(path);
    ASSERT_TRUE((*dm)->AllocatePage().ok());
    ASSERT_TRUE((*dm)->AllocatePage().ok());
    char data[kPageSize] = {'q'};
    ASSERT_TRUE((*dm)->WritePage(1, data).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  auto dm = DiskManager::Open(path);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ((*dm)->num_pages(), 2u);
  char in[kPageSize];
  ASSERT_TRUE((*dm)->ReadPage(1, in).ok());
  EXPECT_EQ(in[0], 'q');
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.DbPath() + ".db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(*dm);
    // One shard keeps the 4-frame capacity exact (AllPinnedFails counts
    // frames); multi-shard behaviour is covered by shard_test.cc.
    pool_ = std::make_unique<BufferPool>(disk_.get(), 4, /*shards=*/1);
  }
  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, NewFetchUnpin) {
  auto page = pool_->NewPage();
  ASSERT_TRUE(page.ok());
  PageId id = (*page)->page_id();
  (*page)->data()[0] = 'z';
  ASSERT_TRUE(pool_->UnpinPage(id, true).ok());
  auto again = pool_->FetchPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->data()[0], 'z');
  ASSERT_TRUE(pool_->UnpinPage(id, false).ok());
  EXPECT_GE(pool_->hit_count(), 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {  // double the pool size
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->data()[0] = static_cast<char>('a' + i);
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  for (int i = 0; i < 8; ++i) {
    auto page = pool_->FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->data()[0], static_cast<char>('a' + i));
    ASSERT_TRUE(pool_->UnpinPage(ids[i], false).ok());
  }
}

TEST_F(BufferPoolTest, AllPinnedFails) {
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    ids.push_back((*page)->page_id());  // keep pinned
  }
  auto fifth = pool_->NewPage();
  EXPECT_FALSE(fifth.ok());
  EXPECT_TRUE(fifth.status().IsBusy());
  for (PageId id : ids) ASSERT_TRUE(pool_->UnpinPage(id, false).ok());
  EXPECT_TRUE(pool_->NewPage().ok());
}

TEST_F(BufferPoolTest, DoubleUnpinRejected) {
  auto page = pool_->NewPage();
  PageId id = (*page)->page_id();
  ASSERT_TRUE(pool_->UnpinPage(id, false).ok());
  EXPECT_TRUE(pool_->UnpinPage(id, false).IsFailedPrecondition());
}

TEST(WalTest, AppendFlushReadBack) {
  TempDir dir;
  auto wal = Wal::Open(dir.DbPath() + ".wal");
  ASSERT_TRUE(wal.ok());
  WalRecord rec;
  rec.type = WalRecordType::kPhysical;
  rec.txn = 7;
  rec.page = 3;
  rec.slot = 1;
  rec.before = {0, 0, ""};
  rec.after = {1, 1, "payload"};
  auto lsn = (*wal)->Append(rec);
  ASSERT_TRUE(lsn.ok());
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 7;
  ASSERT_TRUE((*wal)->Append(commit).ok());
  ASSERT_TRUE((*wal)->Flush().ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE((*wal)->ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, WalRecordType::kPhysical);
  EXPECT_EQ(records[0].txn, 7u);
  EXPECT_EQ(records[0].page, 3u);
  EXPECT_EQ(records[0].after.bytes, "payload");
  EXPECT_EQ(records[1].type, WalRecordType::kCommit);
  EXPECT_LT(records[0].lsn, records[1].lsn);
}

TEST(WalTest, UnflushedRecordsNotDurable) {
  TempDir dir;
  std::string path = dir.DbPath() + ".wal";
  {
    auto wal = Wal::Open(path);
    WalRecord rec;
    rec.type = WalRecordType::kBegin;
    rec.txn = 1;
    ASSERT_TRUE((*wal)->Append(rec).ok());
    EXPECT_EQ((*wal)->unflushed_records(), 1u);
    // dropped without Flush
  }
  auto wal = Wal::Open(path);
  std::vector<WalRecord> records;
  ASSERT_TRUE((*wal)->ReadAll(&records).ok());
  EXPECT_TRUE(records.empty());
}

TEST(WalTest, TornTailIgnored) {
  TempDir dir;
  std::string path = dir.DbPath() + ".wal";
  {
    auto wal = Wal::Open(path);
    WalRecord rec;
    rec.type = WalRecordType::kBegin;
    rec.txn = 1;
    ASSERT_TRUE((*wal)->Append(rec).ok());
    ASSERT_TRUE((*wal)->Flush().ok());
  }
  // Append garbage to simulate a torn write.
  {
    FILE* f = fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x20\x00\x00\x00partial";
    fwrite(garbage, 1, sizeof(garbage), f);
    fclose(f);
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  std::vector<WalRecord> records;
  ASSERT_TRUE((*wal)->ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, 1u);
}

TEST(WalTest, LsnResumesAfterReopen) {
  TempDir dir;
  std::string path = dir.DbPath() + ".wal";
  Lsn last = 0;
  {
    auto wal = Wal::Open(path);
    WalRecord rec;
    rec.type = WalRecordType::kBegin;
    last = *(*wal)->Append(rec);
    ASSERT_TRUE((*wal)->Flush().ok());
  }
  auto wal = Wal::Open(path);
  WalRecord rec;
  rec.type = WalRecordType::kBegin;
  EXPECT_GT(*(*wal)->Append(rec), last);
}

class ObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sm = StorageManager::Open(dir_.DbPath());
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    sm_ = std::move(*sm);
  }
  ObjectStore* store() { return sm_->objects(); }
  TempDir dir_;
  std::unique_ptr<StorageManager> sm_;
};

TEST_F(ObjectStoreTest, InsertReadUpdateDelete) {
  auto oid = store()->Insert(1, "hello");
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(*store()->Read(*oid), "hello");
  ASSERT_TRUE(store()->Update(1, *oid, "goodbye").ok());
  EXPECT_EQ(*store()->Read(*oid), "goodbye");
  ASSERT_TRUE(store()->Delete(1, *oid).ok());
  EXPECT_TRUE(store()->Read(*oid).status().IsNotFound());
}

TEST_F(ObjectStoreTest, DanglingOidDetectedAfterReuse) {
  auto oid = store()->Insert(1, "first");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store()->Delete(1, *oid).ok());
  auto oid2 = store()->Insert(1, "second");
  ASSERT_TRUE(oid2.ok());
  // Same slot, different generation.
  EXPECT_EQ(oid2->page, oid->page);
  EXPECT_EQ(oid2->slot, oid->slot);
  EXPECT_NE(oid2->generation, oid->generation);
  EXPECT_TRUE(store()->Read(*oid).status().IsNotFound());
  EXPECT_EQ(*store()->Read(*oid2), "second");
}

TEST_F(ObjectStoreTest, UpdateThatOutgrowsPageKeepsOid) {
  // Fill a page so the update cannot stay in place.
  auto oid = store()->Insert(1, "tiny");
  ASSERT_TRUE(oid.ok());
  std::vector<Oid> fillers;
  for (int i = 0; i < 10; ++i) {
    auto f = store()->Insert(1, std::string(380, 'f'));
    ASSERT_TRUE(f.ok());
    if (f->page == oid->page) fillers.push_back(*f);
  }
  std::string big(3000, 'B');
  ASSERT_TRUE(store()->Update(1, *oid, big).ok());
  EXPECT_EQ(*store()->Read(*oid), big);  // OID stable through the move
  // Update the moved object again (through the forward stub).
  std::string bigger(3500, 'C');
  ASSERT_TRUE(store()->Update(1, *oid, bigger).ok());
  EXPECT_EQ(*store()->Read(*oid), bigger);
  ASSERT_TRUE(store()->Delete(1, *oid).ok());
  EXPECT_TRUE(store()->Read(*oid).status().IsNotFound());
}

TEST_F(ObjectStoreTest, LargeObjectsChainAcrossPages) {
  std::string big;
  Random rng(5);
  for (int i = 0; i < 20000; ++i) {
    big.push_back(static_cast<char>('a' + rng.Uniform(26)));
  }
  auto oid = store()->Insert(1, big);
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(*store()->Read(*oid), big);
  // Update a large object to a different large value.
  std::string other(15000, 'Q');
  ASSERT_TRUE(store()->Update(1, *oid, other).ok());
  EXPECT_EQ(*store()->Read(*oid), other);
  // Shrink back to a small object.
  ASSERT_TRUE(store()->Update(1, *oid, "small again").ok());
  EXPECT_EQ(*store()->Read(*oid), "small again");
  ASSERT_TRUE(store()->Delete(1, *oid).ok());
}

TEST_F(ObjectStoreTest, ScanAllReportsHomeOids) {
  std::vector<Oid> created;
  for (int i = 0; i < 50; ++i) {
    auto oid = store()->Insert(1, "obj" + std::to_string(i));
    ASSERT_TRUE(oid.ok());
    created.push_back(*oid);
  }
  // Move one via an oversized update; scan must still report its home OID
  // exactly once.
  std::string big(3900, 'm');
  ASSERT_TRUE(store()->Update(1, created[0], big).ok());
  auto scan = store()->ScanAll();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), created.size());
  for (const Oid& oid : created) {
    EXPECT_NE(std::find(scan->begin(), scan->end(), oid), scan->end());
  }
}

TEST_F(ObjectStoreTest, ExistsChecksLiveness) {
  auto oid = store()->Insert(1, "x");
  EXPECT_TRUE(store()->Exists(*oid));
  ASSERT_TRUE(store()->Delete(1, *oid).ok());
  EXPECT_FALSE(store()->Exists(*oid));
  EXPECT_FALSE(store()->Exists(Oid{999, 1, 1}));
}

TEST_F(ObjectStoreTest, ManyObjectsAcrossManyPages) {
  Random rng(77);
  std::unordered_map<std::string, Oid> objects;
  for (int i = 0; i < 2000; ++i) {
    std::string payload = "payload_" + std::to_string(i) +
                          std::string(rng.Uniform(200), 'p');
    auto oid = store()->Insert(1, payload);
    ASSERT_TRUE(oid.ok());
    objects[payload] = *oid;
  }
  EXPECT_GT(store()->data_page_count(), 10u);
  for (const auto& [payload, oid] : objects) {
    ASSERT_EQ(*store()->Read(oid), payload);
  }
}

TEST(StorageManagerTest, MetaRootRoundTrip) {
  TempDir dir;
  auto sm = StorageManager::Open(dir.DbPath());
  ASSERT_TRUE(sm.ok());
  EXPECT_FALSE((*sm)->GetMetaRoot()->valid());
  Oid root{5, 2, 1};
  ASSERT_TRUE((*sm)->SetMetaRoot(root).ok());
  EXPECT_EQ(*(*sm)->GetMetaRoot(), root);
}

TEST(StorageManagerTest, MetaRootSurvivesReopen) {
  TempDir dir;
  Oid root{5, 2, 1};
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE((*sm)->SetMetaRoot(root).ok());
    ASSERT_TRUE((*sm)->Checkpoint().ok());
  }
  auto sm = StorageManager::Open(dir.DbPath());
  ASSERT_TRUE(sm.ok());
  EXPECT_EQ(*(*sm)->GetMetaRoot(), root);
}

}  // namespace
}  // namespace reach
