// Shared test helpers.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/status.h"
#include "storage/storage_manager.h"

namespace reach::testing {

/// Append a commit record for `txn` and wait for it to become durable —
/// what TransactionManager::Commit does at its durability point. Tests that
/// drive StorageManager directly use this before simulating a crash.
inline Status DurableLogCommit(StorageManager* sm, TxnId txn) {
  auto lsn = sm->LogCommit(txn);
  if (!lsn.ok()) return lsn.status();
  return sm->wal()->WaitDurable(*lsn);
}

/// Unique scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    auto base = std::filesystem::temp_directory_path() / "reach_test_XXXXXX";
    std::string tmpl = base.string();
    char* made = ::mkdtemp(tmpl.data());
    path_ = made != nullptr ? made : base.string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Path for a database file base inside the directory.
  std::string DbPath(const std::string& name = "db") const {
    return (std::filesystem::path(path_) / name).string();
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace reach::testing
