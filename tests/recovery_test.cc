// Crash-recovery tests: a "crash" is simulated by destroying the storage
// manager without flushing the buffer pool (dirty pages and unflushed WAL
// buffer are lost), then reopening — Open() runs recovery.
#include <gtest/gtest.h>

#include "storage/storage_manager.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::DurableLogCommit;
using reach::testing::TempDir;

TEST(RecoveryTest, CommittedInsertSurvivesCrash) {
  TempDir dir;
  Oid oid;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE((*sm)->LogBegin(1).ok());
    auto r = (*sm)->objects()->Insert(1, "durable");
    ASSERT_TRUE(r.ok());
    oid = *r;
    ASSERT_TRUE(DurableLogCommit(sm->get(), 1).ok());
    // Crash: no checkpoint, no flush.
  }
  auto sm = StorageManager::Open(dir.DbPath());
  ASSERT_TRUE(sm.ok());
  EXPECT_GE((*sm)->recovery_stats().records_redone, 1u);
  EXPECT_EQ((*sm)->recovery_stats().committed_txns, 1u);
  auto read = (*sm)->objects()->Read(oid);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "durable");
}

TEST(RecoveryTest, UncommittedInsertRolledBack) {
  TempDir dir;
  Oid committed_oid, loser_oid;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE((*sm)->LogBegin(1).ok());
    committed_oid = *(*sm)->objects()->Insert(1, "keep");
    ASSERT_TRUE(DurableLogCommit(sm->get(), 1).ok());

    ASSERT_TRUE((*sm)->LogBegin(2).ok());
    loser_oid = *(*sm)->objects()->Insert(2, "lose");
    // Force everything to disk so the loser's page changes are durable —
    // recovery must actively undo them.
    ASSERT_TRUE((*sm)->buffer_pool()->FlushAll().ok());
    // Crash before commit of txn 2.
  }
  auto sm = StorageManager::Open(dir.DbPath());
  ASSERT_TRUE(sm.ok());
  EXPECT_EQ((*sm)->recovery_stats().loser_txns, 1u);
  EXPECT_GE((*sm)->recovery_stats().records_undone, 1u);
  EXPECT_EQ(*(*sm)->objects()->Read(committed_oid), "keep");
  EXPECT_TRUE((*sm)->objects()->Read(loser_oid).status().IsNotFound());
}

TEST(RecoveryTest, CommittedUpdateAndDeleteSurvive) {
  TempDir dir;
  Oid updated, deleted;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE((*sm)->LogBegin(1).ok());
    updated = *(*sm)->objects()->Insert(1, "v1");
    deleted = *(*sm)->objects()->Insert(1, "doomed");
    ASSERT_TRUE(DurableLogCommit(sm->get(), 1).ok());
    ASSERT_TRUE((*sm)->Checkpoint().ok());

    ASSERT_TRUE((*sm)->LogBegin(2).ok());
    ASSERT_TRUE((*sm)->objects()->Update(2, updated, "v2").ok());
    ASSERT_TRUE((*sm)->objects()->Delete(2, deleted).ok());
    ASSERT_TRUE(DurableLogCommit(sm->get(), 2).ok());
    // Crash after commit.
  }
  auto sm = StorageManager::Open(dir.DbPath());
  EXPECT_EQ(*(*sm)->objects()->Read(updated), "v2");
  EXPECT_TRUE((*sm)->objects()->Read(deleted).status().IsNotFound());
}

TEST(RecoveryTest, UncommittedUpdateRestoresOldValue) {
  TempDir dir;
  Oid oid;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE((*sm)->LogBegin(1).ok());
    oid = *(*sm)->objects()->Insert(1, "original");
    ASSERT_TRUE(DurableLogCommit(sm->get(), 1).ok());

    ASSERT_TRUE((*sm)->LogBegin(2).ok());
    ASSERT_TRUE((*sm)->objects()->Update(2, oid, "tampered").ok());
    ASSERT_TRUE((*sm)->buffer_pool()->FlushAll().ok());
    // Crash: txn 2 never committed.
  }
  auto sm = StorageManager::Open(dir.DbPath());
  EXPECT_EQ(*(*sm)->objects()->Read(oid), "original");
}

TEST(RecoveryTest, AbortedTransactionStaysRolledBack) {
  TempDir dir;
  Oid oid;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE((*sm)->LogBegin(1).ok());
    oid = *(*sm)->objects()->Insert(1, "original");
    ASSERT_TRUE(DurableLogCommit(sm->get(), 1).ok());

    // Abort with logged compensation, as the transaction manager does.
    ASSERT_TRUE((*sm)->LogBegin(2).ok());
    ASSERT_TRUE((*sm)->objects()->Update(2, oid, "scribble").ok());
    WalCellImage restore;
    restore.flag = 1;  // kLive
    restore.generation = oid.generation;
    restore.bytes = std::string(1, '\0') + "original";  // whole-envelope
    ASSERT_TRUE((*sm)->objects()
                    ->ApplyImageLogged(2, oid.page, oid.slot, restore)
                    .ok());
    ASSERT_TRUE((*sm)->LogAbort(2).ok());
    // Crash.
  }
  auto sm = StorageManager::Open(dir.DbPath());
  EXPECT_EQ((*sm)->recovery_stats().aborted_txns, 1u);
  EXPECT_EQ((*sm)->recovery_stats().loser_txns, 0u);
  EXPECT_EQ(*(*sm)->objects()->Read(oid), "original");
}

TEST(RecoveryTest, RecoveryIsIdempotent) {
  TempDir dir;
  Oid oid;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE((*sm)->LogBegin(1).ok());
    oid = *(*sm)->objects()->Insert(1, "stable");
    ASSERT_TRUE(DurableLogCommit(sm->get(), 1).ok());
  }
  // Open/close repeatedly; state must not change.
  for (int i = 0; i < 3; ++i) {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE(sm.ok());
    EXPECT_EQ(*(*sm)->objects()->Read(oid), "stable");
  }
}

TEST(RecoveryTest, LargeObjectRecovery) {
  TempDir dir;
  std::string big(20000, 'L');
  Oid oid;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE((*sm)->LogBegin(1).ok());
    oid = *(*sm)->objects()->Insert(1, big);
    ASSERT_TRUE(DurableLogCommit(sm->get(), 1).ok());
  }
  auto sm = StorageManager::Open(dir.DbPath());
  EXPECT_EQ(*(*sm)->objects()->Read(oid), big);
}

TEST(RecoveryTest, MixedWinnersAndLosers) {
  TempDir dir;
  std::vector<Oid> winners, losers;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    for (TxnId t = 1; t <= 10; ++t) {
      ASSERT_TRUE((*sm)->LogBegin(t).ok());
      auto oid =
          (*sm)->objects()->Insert(t, "txn" + std::to_string(t));
      ASSERT_TRUE(oid.ok());
      if (t % 2 == 0) {
        ASSERT_TRUE(DurableLogCommit(sm->get(), t).ok());
        winners.push_back(*oid);
      } else {
        losers.push_back(*oid);
      }
    }
    ASSERT_TRUE((*sm)->buffer_pool()->FlushAll().ok());
  }
  auto sm = StorageManager::Open(dir.DbPath());
  EXPECT_EQ((*sm)->recovery_stats().committed_txns, 5u);
  EXPECT_EQ((*sm)->recovery_stats().loser_txns, 5u);
  for (const Oid& oid : winners) {
    EXPECT_TRUE((*sm)->objects()->Read(oid).ok());
  }
  for (const Oid& oid : losers) {
    EXPECT_TRUE((*sm)->objects()->Read(oid).status().IsNotFound());
  }
}

}  // namespace
}  // namespace reach
