// Sharded buffer pool and striped object store (docs/STORAGE.md):
// REACH_STORAGE option parsing, shard slicing, hit/miss accounting summed
// over shards, cross-shard eviction under fault injection, concurrent
// Fetch/Unpin/Flush across shards (the TSan matrix runs this suite), and a
// recovery-equivalence sweep proving the shard count is invisible to ARIES
// recovery: the same WAL replayed into pools with different shard counts
// must yield identical object state.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {
namespace {

using reach::testing::DurableLogCommit;
using reach::testing::TempDir;

TEST(BufferPoolOptionsTest, ParsesShardsFromSpec) {
  EXPECT_EQ(BufferPoolOptions::Parse(nullptr).shards, 0u);
  EXPECT_EQ(BufferPoolOptions::Parse("").shards, 0u);
  EXPECT_EQ(BufferPoolOptions::Parse("shards=4").shards, 4u);
  EXPECT_EQ(BufferPoolOptions::Parse("shards=16,future=1").shards, 16u);
  EXPECT_EQ(BufferPoolOptions::Parse("future=1;shards=2").shards, 2u);
  // Unknown entries are ignored, not an error.
  EXPECT_EQ(BufferPoolOptions::Parse("bogus").shards, 0u);
}

TEST(BufferPoolOptionsTest, ResolveShardsAutoIsPowerOfTwo) {
  // Explicit requests pass through untouched, including non-powers of two.
  EXPECT_EQ(BufferPoolOptions::ResolveShards(3), 3u);
  EXPECT_EQ(BufferPoolOptions::ResolveShards(16), 16u);
  size_t n = BufferPoolOptions::ResolveShards(0);
  EXPECT_GE(n, 1u);
  EXPECT_EQ(n & (n - 1), 0u) << "auto shard count must be a power of two";
}

TEST(WalOptionsTest, ParsesAdaptiveKnob) {
  EXPECT_FALSE(WalOptions::Parse(nullptr).adaptive_delay);
  EXPECT_TRUE(WalOptions::Parse("adaptive").adaptive_delay);
  EXPECT_TRUE(WalOptions::Parse("adaptive=on").adaptive_delay);
  EXPECT_FALSE(WalOptions::Parse("adaptive=off").adaptive_delay);
  WalOptions o = WalOptions::Parse("group=on,adaptive,max_batch_delay_us=50");
  EXPECT_TRUE(o.group_commit);
  EXPECT_TRUE(o.adaptive_delay);
  EXPECT_EQ(o.max_batch_delay_us, 50u);
}

TEST(WalAdaptiveTest, AdaptiveDelayStaysBoundedUnderCommitLoad) {
  TempDir dir;
  StorageOptions opts;
  opts.wal.group_commit = true;
  opts.wal.adaptive_delay = true;
  opts.wal.max_batch_delay_us = 100;  // adaptation ceiling
  auto sm_or = StorageManager::Open(dir.DbPath(), opts);
  ASSERT_TRUE(sm_or.ok());
  auto sm = std::move(*sm_or);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        TxnId txn = static_cast<TxnId>(1 + t * 25 + i);
        if (!sm->LogBegin(txn).ok() ||
            !sm->objects()->Insert(txn, "adaptive_payload").ok() ||
            !DurableLogCommit(sm.get(), txn).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The adapted delay never exceeds the configured ceiling.
  EXPECT_LE(sm->wal()->current_batch_delay_us(), 100u);
}

class ShardedPoolTest : public ::testing::Test {
 protected:
  /// `writeback` defaults to the REACH_STORAGE setting; tests that assert
  /// deterministic eviction order or dirty-eviction fault coverage pass 0 —
  /// a background cleaner would wash their preconditions away mid-test
  /// (writeback_test covers the cleaner itself).
  void Open(size_t pool_size, size_t shards, int writeback = -1) {
    auto dm = DiskManager::Open(dir_.DbPath() + ".db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(*dm);
    BufferPoolOptions options;
    options.shards = shards;
    options.writeback = writeback;
    pool_ = std::make_unique<BufferPool>(disk_.get(), pool_size, options);
  }
  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(ShardedPoolTest, ShardCountClampedToFrameBudget) {
  Open(4, 16);
  EXPECT_EQ(pool_->shard_count(), 4u);
  EXPECT_EQ(pool_->pool_size(), 4u);
}

TEST_F(ShardedPoolTest, FrameBudgetPreservedAcrossShardCounts) {
  for (size_t shards : {1u, 2u, 4u}) {
    Open(10, shards);
    EXPECT_EQ(pool_->shard_count(), shards);
    EXPECT_EQ(pool_->pool_size(), 10u) << "shards=" << shards;
  }
}

TEST_F(ShardedPoolTest, PagesLandOnDistinctShardsAndSurviveEviction) {
  // 8 frames over 4 shards, 24 pages: every shard must evict, and each
  // page must round-trip its contents through its own shard's LRU.
  Open(8, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 24; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->data()[0] = static_cast<char>('A' + i);
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  for (int i = 0; i < 24; ++i) {
    auto page = pool_->FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->data()[0], static_cast<char>('A' + i));
    ASSERT_TRUE(pool_->UnpinPage(ids[i], false).ok());
  }
}

TEST_F(ShardedPoolTest, HitMissAccountingSumsOverShards) {
  Open(8, 4, /*writeback=*/0);  // deterministic eviction order
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  EXPECT_EQ(pool_->hit_count(), 0u);  // NewPage is neither hit nor miss
  EXPECT_EQ(pool_->miss_count(), 0u);
  for (PageId id : ids) {  // all cached: 8 hits spread over 4 shards
    ASSERT_TRUE(pool_->FetchPage(id).ok());
    ASSERT_TRUE(pool_->UnpinPage(id, false).ok());
  }
  EXPECT_EQ(pool_->hit_count(), 8u);
  EXPECT_EQ(pool_->miss_count(), 0u);
  // Evict everything by cycling 16 fresh pages through, then re-fetch one
  // old page per shard: 4 misses.
  for (int i = 0; i < 16; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool_->UnpinPage((*page)->page_id(), true).ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool_->FetchPage(ids[i]).ok());
    ASSERT_TRUE(pool_->UnpinPage(ids[i], false).ok());
  }
  EXPECT_EQ(pool_->hit_count(), 8u);
  EXPECT_EQ(pool_->miss_count(), 4u);
}

TEST_F(ShardedPoolTest, CrossShardEvictionFaultSurfacesCleanly) {
  Open(4, 4, /*writeback=*/0);  // every eviction must hit the dirty path
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  // Every further NewPage must evict a dirty page from its target shard;
  // the armed fault makes each such writeback fail until disarmed.
  reg.ArmError(faults::kBufEvictWriteback, Status::Code::kIoError, /*nth=*/1,
               /*one_shot=*/false);
  for (int i = 0; i < 4; ++i) {
    auto page = pool_->NewPage();
    EXPECT_FALSE(page.ok());
    EXPECT_TRUE(page.status().IsIoError()) << page.status().ToString();
  }
  reg.DisarmAll();
  // Disarmed: eviction proceeds and the evicted pages' contents survived
  // on disk via the (now succeeding) writeback.
  auto page = pool_->NewPage();
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool_->UnpinPage((*page)->page_id(), true).ok());
  for (PageId id : ids) {
    auto old_page = pool_->FetchPage(id);
    ASSERT_TRUE(old_page.ok());
    ASSERT_TRUE(pool_->UnpinPage(id, false).ok());
  }
}

TEST_F(ShardedPoolTest, ConcurrentFetchUnpinFlushAcrossShards) {
  // TSan target: readers hammer pages spread over all shards while a
  // flusher thread runs FlushPage/FlushAll against the same shards.
  Open(16, 4);
  constexpr int kPages = 48;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->data()[0] = 'i';
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 400; ++round) {
        PageId id = ids[(t * 131 + round) % kPages];
        auto page = pool_->FetchPage(id);
        if (!page.ok()) {
          // Busy (all frames of the shard pinned momentarily) is the only
          // acceptable failure under pure contention.
          if (!page.status().IsBusy()) failures.fetch_add(1);
          continue;
        }
        if ((*page)->data()[0] != 'i') failures.fetch_add(1);
        if (!pool_->UnpinPage(id, round % 8 == 0).ok()) failures.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!pool_->FlushPage(ids[i++ % kPages]).ok()) failures.fetch_add(1);
      if (i % 16 == 0 && !pool_->FlushAll().ok()) failures.fetch_add(1);
    }
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ShardedStoreTest, ConcurrentReadersWithWriter) {
  // Readers take the store's shared operation lock and only contend on
  // buffer pool shards; a writer interleaves inserts and updates. TSan
  // target for the striped ObjectStore.
  TempDir dir;
  StorageOptions opts;
  opts.bufferpool_shards = 4;
  auto sm_or = StorageManager::Open(dir.DbPath(), opts);
  ASSERT_TRUE(sm_or.ok());
  auto sm = std::move(*sm_or);
  ObjectStore* store = sm->objects();

  ASSERT_TRUE(sm->LogBegin(1).ok());
  std::vector<Oid> oids;
  for (int i = 0; i < 64; ++i) {
    auto oid = store->Insert(1, "obj_" + std::to_string(i) +
                                    std::string(100, 'x'));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(DurableLogCommit(sm.get(), 1).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        const Oid& oid = oids[(t * 37 + round) % oids.size()];
        auto body = store->Read(oid);
        if (!body.ok() ||
            body->compare(0, 4, "obj_") != 0) {
          failures.fetch_add(1);
        }
        if (!store->Exists(oid)) failures.fetch_add(1);
        if (round % 50 == 0 && !store->ScanAll().ok()) failures.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      TxnId txn = static_cast<TxnId>(100 + i);
      if (!sm->LogBegin(txn).ok()) return;
      auto oid = store->Insert(txn, "obj_w" + std::string(50, 'w'));
      if (!oid.ok()) failures.fetch_add(1);
      if (!store->Update(txn, oids[i % oids.size()],
                         "obj_u" + std::string(120, 'u'))
               .ok()) {
        failures.fetch_add(1);
      }
      if (!DurableLogCommit(sm.get(), txn).ok()) failures.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Replay the same WAL into pools with different shard counts; recovery and
// the resulting object state must be identical — sharding is an in-memory
// layout choice, invisible to ARIES.
TEST(ShardRecoveryEquivalenceTest, SameWalReplaysIdenticallyAtShardCounts) {
  TempDir dir;
  std::vector<Oid> committed;
  Oid loser;
  {
    StorageOptions opts;
    opts.buffer_pool_pages = 8;  // eviction traffic while the log is live
    auto sm_or = StorageManager::Open(dir.DbPath("origin"), opts);
    ASSERT_TRUE(sm_or.ok());
    auto sm = std::move(*sm_or);
    ASSERT_TRUE(sm->LogBegin(1).ok());
    for (int i = 0; i < 40; ++i) {
      auto oid = sm->objects()->Insert(
          1, "payload_" + std::to_string(i) + std::string(i * 13 % 300, 'p'));
      ASSERT_TRUE(oid.ok());
      committed.push_back(*oid);
    }
    // Update a few so redo has non-trivial work; delete one.
    ASSERT_TRUE(sm->objects()->Update(1, committed[3], "rewritten").ok());
    ASSERT_TRUE(sm->objects()->Delete(1, committed[7]).ok());
    ASSERT_TRUE(DurableLogCommit(sm.get(), 1).ok());
    // A loser transaction recovery must undo.
    ASSERT_TRUE(sm->LogBegin(2).ok());
    auto l = sm->objects()->Insert(2, "loser");
    ASSERT_TRUE(l.ok());
    loser = *l;
    ASSERT_TRUE(sm->buffer_pool()->FlushAll().ok());
    // Crash: destroy without checkpoint; the WAL carries everything.
  }

  auto clone = [&](const std::string& to) {
    std::filesystem::copy_file(dir.DbPath("origin") + ".db",
                               dir.DbPath(to) + ".db");
    std::filesystem::copy_file(dir.DbPath("origin") + ".wal",
                               dir.DbPath(to) + ".wal");
  };
  clone("one");
  clone("four");

  auto recover = [&](const std::string& base, size_t shards) {
    StorageOptions opts;
    opts.buffer_pool_pages = 8;
    opts.bufferpool_shards = shards;
    return StorageManager::Open(dir.DbPath(base), opts);
  };
  auto sm1_or = recover("one", 1);
  auto sm4_or = recover("four", 4);
  ASSERT_TRUE(sm1_or.ok()) << sm1_or.status().ToString();
  ASSERT_TRUE(sm4_or.ok()) << sm4_or.status().ToString();
  auto& sm1 = *sm1_or;
  auto& sm4 = *sm4_or;
  EXPECT_EQ(sm1->buffer_pool()->shard_count(), 1u);
  EXPECT_EQ(sm4->buffer_pool()->shard_count(), 4u);
  EXPECT_EQ(sm1->recovery_stats().committed_txns,
            sm4->recovery_stats().committed_txns);
  EXPECT_EQ(sm1->recovery_stats().loser_txns,
            sm4->recovery_stats().loser_txns);

  auto scan1 = sm1->objects()->ScanAll();
  auto scan4 = sm4->objects()->ScanAll();
  ASSERT_TRUE(scan1.ok());
  ASSERT_TRUE(scan4.ok());
  EXPECT_EQ(*scan1, *scan4) << "shard count changed the recovered OID set";
  for (const Oid& oid : *scan1) {
    auto b1 = sm1->objects()->Read(oid);
    auto b4 = sm4->objects()->Read(oid);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b4.ok());
    EXPECT_EQ(*b1, *b4) << "divergent contents at " << oid.ToString();
  }
  EXPECT_TRUE(sm1->objects()->Read(loser).status().IsNotFound());
  EXPECT_TRUE(sm4->objects()->Read(loser).status().IsNotFound());
  EXPECT_EQ(*sm1->objects()->Read(committed[3]), "rewritten");
  EXPECT_EQ(*sm4->objects()->Read(committed[3]), "rewritten");
}

}  // namespace
}  // namespace reach
