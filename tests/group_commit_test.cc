// Group-commit subsystem (see docs/STORAGE.md): durable-LSN watermark
// monotonicity under concurrent committers, batch-failure semantics (every
// waiter of a failed flusher batch gets the same status), WaitDurable under
// concurrent commit/abort traffic (exercised by the TSan CI matrix), a
// mid-batch crash losing only unacknowledged commits, and a recovery
// equivalence check: the same seeded workload run with group commit on and
// off must leave identical post-recovery state under fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class GroupCommitTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }

  static StorageOptions GroupedOptions(uint32_t delay_us = 0) {
    StorageOptions opts;
    opts.buffer_pool_pages = 16;
    opts.wal.group_commit = true;
    opts.wal.max_batch_delay_us = delay_us;
    return opts;
  }
};

TEST_F(GroupCommitTest, DurableLsnAdvancesAndNeverRegresses) {
  TempDir dir;
  auto sm = StorageManager::Open(dir.DbPath(), GroupedOptions()).value();
  Wal* wal = sm->wal();
  TransactionManager tm(sm.get());

  std::atomic<bool> done{false};
  std::atomic<bool> regressed{false};
  std::thread watcher([&] {
    Lsn prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      Lsn cur = wal->durable_lsn();
      if (cur < prev) regressed.store(true);
      prev = cur;
    }
  });

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 40;
  std::atomic<int> committed{0};
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = tm.Begin();
        if (!txn.ok()) continue;
        auto oid = sm->objects()->Insert(
            *txn, "t" + std::to_string(t) + "i" + std::to_string(i));
        if (oid.ok() && tm.Commit(*txn).ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& th : committers) th.join();
  done.store(true, std::memory_order_release);
  watcher.join();

  EXPECT_FALSE(regressed.load()) << "durable-LSN watermark went backwards";
  EXPECT_EQ(committed.load(), kThreads * kTxnsPerThread);
  // Every acknowledged commit is covered by the watermark.
  EXPECT_TRUE(wal->WaitDurable(wal->durable_lsn()).ok());
  EXPECT_EQ(wal->unflushed_records(), 0u);
}

TEST_F(GroupCommitTest, BatchFailureFailsEveryWaiterWithSameStatus) {
  TempDir dir;
  WalOptions wopts;
  wopts.group_commit = true;
  auto wal = Wal::Open(dir.DbPath("wal.log"), wopts).value();
  auto& reg = FaultRegistry::Instance();
  reg.ArmError(faults::kWalFlusherBatch, Status::Code::kIoError, /*nth=*/1,
               /*one_shot=*/false);

  constexpr int kWaiters = 8;
  std::vector<Status> statuses(kWaiters, Status::OK());
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      WalRecord rec;
      rec.type = WalRecordType::kCommit;
      rec.txn = static_cast<TxnId>(i + 1);
      auto lsn = wal->Append(std::move(rec));
      statuses[i] = lsn.ok() ? wal->WaitDurable(*lsn) : lsn.status();
    });
  }
  for (auto& th : waiters) th.join();

  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_TRUE(statuses[i].IsIoError())
        << "waiter " << i << " got " << statuses[i].ToString();
    EXPECT_EQ(statuses[i].ToString(), statuses[0].ToString())
        << "waiters of a failed batch must share one status";
  }
  EXPECT_EQ(wal->durable_lsn(), 0u) << "failed batch advanced the watermark";

  // Once the fault clears, a retry flushes the restored batch. A failing
  // batch armed before DisarmAll may still be in flight and fail the first
  // retry; the second attempt cannot see any armed fault.
  reg.DisarmAll();
  Status retry = wal->Flush();
  if (!retry.ok()) retry = wal->Flush();
  EXPECT_TRUE(retry.ok()) << retry.ToString();
  EXPECT_EQ(wal->durable_lsn(), static_cast<Lsn>(kWaiters));
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal->ReadAll(&records).ok());
  EXPECT_EQ(records.size(), static_cast<size_t>(kWaiters));
}

TEST_F(GroupCommitTest, WaitDurableUnderConcurrentCommitAndAbort) {
  // Commit and abort traffic interleaved over the flusher: the TSan matrix
  // runs this against the flusher thread's locking discipline. A small
  // coalescing delay widens the batching window.
  TempDir dir;
  auto sm =
      StorageManager::Open(dir.DbPath(), GroupedOptions(/*delay_us=*/200))
          .value();
  TransactionManager tm(sm.get());

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 30;
  using Effect = std::pair<Oid, std::string>;
  std::vector<std::vector<Effect>> kept(kThreads), dropped(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = tm.Begin();
        if (!txn.ok()) continue;
        std::string value = "t" + std::to_string(t) + "v" + std::to_string(i);
        auto oid = sm->objects()->Insert(*txn, value);
        if (!oid.ok()) {
          (void)tm.Abort(*txn);
          continue;
        }
        if (i % 3 == 0) {
          if (tm.Abort(*txn).ok()) dropped[t].emplace_back(*oid, value);
        } else {
          if (tm.Commit(*txn).ok()) kept[t].emplace_back(*oid, value);
        }
      }
    });
  }
  for (auto& th : workers) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(kept[t].size(),
              static_cast<size_t>(kTxnsPerThread - (kTxnsPerThread + 2) / 3));
    for (const auto& [oid, value] : kept[t]) {
      auto read = sm->objects()->Read(oid);
      ASSERT_TRUE(read.ok()) << oid.ToString();
      EXPECT_EQ(*read, value);
    }
    // An aborted insert's slot may be reused by a later transaction, so the
    // OID can resolve again — but never to the rolled-back value.
    for (const auto& [oid, value] : dropped[t]) {
      auto read = sm->objects()->Read(oid);
      if (read.ok()) {
        EXPECT_NE(*read, value) << oid.ToString();
      }
    }
  }
}

TEST_F(GroupCommitTest, MidBatchCrashLosesOnlyUnacknowledgedCommits) {
  // The acceptance bar for recovery semantics: a crash in the middle of a
  // flusher batch must never lose a commit that WaitDurable acknowledged,
  // and must never surface a commit it did not.
  TempDir dir;
  auto& reg = FaultRegistry::Instance();
  Oid acked, lost;
  {
    auto sm = StorageManager::Open(dir.DbPath(), GroupedOptions()).value();
    TransactionManager tm(sm.get());

    TxnId t1 = *tm.Begin();
    acked = *sm->objects()->Insert(t1, "acknowledged");
    ASSERT_TRUE(tm.Commit(t1).ok());

    TxnId t2 = *tm.Begin();
    lost = *sm->objects()->Insert(t2, "in-flight");
    reg.ArmCrash(faults::kWalFlusherBatch, /*nth=*/1);
    EXPECT_THROW((void)tm.Commit(t2), FaultInjectedCrash);
    reg.DisarmAll();
    // Crash convention: drop the stack without flush or checkpoint.
  }
  auto sm = StorageManager::Open(dir.DbPath(), GroupedOptions()).value();
  auto read = sm->objects()->Read(acked);
  ASSERT_TRUE(read.ok()) << "acknowledged commit lost in mid-batch crash";
  EXPECT_EQ(*read, "acknowledged");
  EXPECT_FALSE(sm->objects()->Read(lost).ok())
      << "unacknowledged commit surfaced after mid-batch crash";
}

TEST_F(GroupCommitTest, GroupCommitRecordsGroupingMetrics) {
  auto& reg = obs::MetricsRegistry::Instance();
  reg.SetEnabled(true);
  reg.ResetAll();
  TempDir dir;
  {
    auto sm =
        StorageManager::Open(dir.DbPath(), GroupedOptions(/*delay_us=*/500))
            .value();
    TransactionManager tm(sm.get());
    constexpr int kThreads = 8;
    std::vector<std::thread> committers;
    for (int t = 0; t < kThreads; ++t) {
      committers.emplace_back([&] {
        for (int i = 0; i < 20; ++i) {
          auto txn = tm.Begin();
          ASSERT_TRUE(txn.ok());
          (void)sm->objects()->Insert(*txn, "m");
          ASSERT_TRUE(tm.Commit(*txn).ok());
        }
      });
    }
    for (auto& th : committers) th.join();
  }
  auto batches = reg.histogram(obs::kWalGroupSize)->Snapshot();
  EXPECT_GT(batches.count, 0u) << "no flusher batch ever completed";
  auto waits = reg.histogram(obs::kWalGroupWaitNs)->Snapshot();
  EXPECT_GT(waits.count, 0u) << "no committer ever waited on the flusher";
  reg.SetEnabled(false);
}

// ---------------------------------------------------------------------------
// Recovery equivalence: same seeded workload + same injected fault, run with
// group commit on and off, must recover to identical state. Fault points are
// restricted to wal.append and wal.flush.write, whose hit sequences are
// mode-independent (one hit per durability request with pending records);
// wal.flush.fsync fires on empty inline flushes that the group path elides,
// so its nth-hit schedule differs by construction.
// ---------------------------------------------------------------------------

struct EquivalenceOutcome {
  std::vector<Oid> attempted;  // all inserts, in schedule order
  std::vector<std::pair<Oid, std::string>> committed;
};

EquivalenceOutcome RunSeededWorkload(const std::string& base,
                                     const WalOptions& wal_opts,
                                     uint64_t seed) {
  EquivalenceOutcome out;
  StorageOptions opts;
  opts.buffer_pool_pages = 8;
  opts.wal = wal_opts;
  try {
    auto sm_or = StorageManager::Open(base, opts);
    if (!sm_or.ok()) return out;
    auto sm = std::move(*sm_or);
    TransactionManager tm(sm.get());
    Random rng(seed);
    for (int n = 0; n < 30; ++n) {
      auto txn = tm.Begin();
      if (!txn.ok()) break;
      std::vector<std::pair<Oid, std::string>> effects;
      int ops = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < ops; ++i) {
        std::string value = "n" + std::to_string(n) + "i" + std::to_string(i) +
                            std::string(rng.Uniform(400), 'e');
        auto oid = sm->objects()->Insert(*txn, value);
        if (!oid.ok()) break;
        out.attempted.push_back(*oid);
        effects.emplace_back(*oid, value);
      }
      if (rng.Bernoulli(0.7)) {
        if (tm.Commit(*txn).ok()) {
          out.committed.insert(out.committed.end(), effects.begin(),
                               effects.end());
        } else if (tm.IsActive(*txn)) {
          (void)tm.Abort(*txn);
        }
      } else {
        (void)tm.Abort(*txn);
      }
      if (rng.Bernoulli(0.3)) (void)sm->buffer_pool()->FlushAll();
    }
  } catch (const FaultInjectedCrash&) {
    // Simulated process death: fall through to the crash-convention drop.
  }
  return out;
}

std::string RecoveredFingerprint(const std::string& base,
                                 const EquivalenceOutcome& out) {
  auto sm_or = StorageManager::Open(base, {.buffer_pool_pages = 8});
  EXPECT_TRUE(sm_or.ok()) << sm_or.status().ToString();
  if (!sm_or.ok()) return "reopen-failed";
  auto sm = std::move(*sm_or);
  std::ostringstream state;
  for (const Oid& oid : out.attempted) {
    auto read = sm->objects()->Read(oid);
    state << oid.ToString() << "="
          << (read.ok() ? std::to_string(read->size()) : "gone") << ";";
  }
  // Acknowledged commits must additionally hold their exact values.
  for (const auto& [oid, value] : out.committed) {
    auto read = sm->objects()->Read(oid);
    EXPECT_TRUE(read.ok()) << "acknowledged commit lost: " << oid.ToString();
    if (read.ok()) {
      EXPECT_EQ(*read, value);
    }
  }
  return state.str();
}

TEST_F(GroupCommitTest, RecoveryEquivalentWithGroupCommitOnAndOff) {
  const uint64_t seed = 0xB00C5ULL;
  auto& reg = FaultRegistry::Instance();
  struct Injection {
    const char* point;  // nullptr = clean run
    uint64_t nth;
    bool crash;
  };
  const Injection injections[] = {
      {nullptr, 0, false},
      {faults::kWalAppend, 5, false},
      {faults::kWalAppend, 20, false},
      {faults::kWalFlushWrite, 1, false},
      {faults::kWalFlushWrite, 4, false},
      {faults::kWalFlushWrite, 2, true},
      {faults::kWalFlushWrite, 7, true},
  };
  for (const Injection& inj : injections) {
    SCOPED_TRACE(std::string("injection=") +
                 (inj.point ? inj.point : "none") +
                 " nth=" + std::to_string(inj.nth) +
                 (inj.crash ? " crash" : " error"));
    std::string fingerprints[2];
    size_t committed_counts[2];
    for (int grouped = 0; grouped < 2; ++grouped) {
      TempDir dir;
      reg.DisarmAll();
      if (inj.point != nullptr) {
        if (inj.crash) {
          reg.ArmCrash(inj.point, inj.nth);
        } else {
          reg.ArmError(inj.point, Status::Code::kIoError, inj.nth,
                       /*one_shot=*/false);
        }
      }
      WalOptions wopts;
      wopts.group_commit = grouped == 1;
      EquivalenceOutcome out = RunSeededWorkload(dir.DbPath(), wopts, seed);
      reg.DisarmAll();
      committed_counts[grouped] = out.committed.size();
      fingerprints[grouped] = RecoveredFingerprint(dir.DbPath(), out);
    }
    EXPECT_EQ(committed_counts[0], committed_counts[1])
        << "commit acknowledgements diverged between modes";
    EXPECT_EQ(fingerprints[0], fingerprints[1])
        << "post-recovery state diverged between group-commit modes";
  }
}

}  // namespace
}  // namespace reach
