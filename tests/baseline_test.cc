// The §4 layered baseline: what works, and which capabilities are
// structurally unavailable without access to the OODBMS internals.
#include <gtest/gtest.h>

#include "baseline/layered_adbms.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class LayeredTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = ClosedDb::Open(dir_.DbPath());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ClassBuilder sensor("Sensor");
    sensor.Attribute("value", ValueType::kInt, Value(0));
    sensor.Method("report",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>& args) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "value", args[0]));
                    return Value();
                  });
    ASSERT_TRUE(db_->RegisterClass(sensor).ok());
    layer_ = std::make_unique<LayeredAdbms>(db_.get());
  }

  TempDir dir_;
  std::unique_ptr<ClosedDb> db_;
  std::unique_ptr<LayeredAdbms> layer_;
};

TEST_F(LayeredTest, FlatTransactionsOnly) {
  ASSERT_TRUE(db_->Begin().ok());
  EXPECT_TRUE(db_->Begin().IsNotSupported());  // no nesting
  ASSERT_TRUE(db_->Commit().ok());
}

TEST_F(LayeredTest, DetachedModesUnavailable) {
  EXPECT_TRUE(layer_->DefineDetachedRule("contingency").IsNotSupported());
}

TEST_F(LayeredTest, AnnouncedEventsFireImmediateRules) {
  int fired = 0;
  ASSERT_TRUE(layer_
                  ->DefineRule(
                      "watch", "Sensor", "report",
                      LayeredAdbms::Coupling::kImmediate,
                      [](ClosedDb&, const std::vector<Value>& args) {
                        return args[0].as_int() > 10;
                      },
                      [&](ClosedDb&, const std::vector<Value>&) {
                        fired++;
                        return Status::OK();
                      })
                  .ok());
  ASSERT_TRUE(layer_->Begin().ok());
  auto oid = db_->PersistNew("Sensor", {});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(layer_->WrappedInvoke(*oid, "Sensor", "report", {Value(5)}).ok());
  EXPECT_EQ(fired, 0);
  ASSERT_TRUE(
      layer_->WrappedInvoke(*oid, "Sensor", "report", {Value(50)}).ok());
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(layer_->Commit().ok());
  // Every wrapped call paid the journal write regardless of matches.
  EXPECT_EQ(layer_->announced(), 2u);
  EXPECT_EQ(layer_->journal_writes(), 2u);
}

TEST_F(LayeredTest, UnwrappedCallsEscapeDetection) {
  // The §4 problem: calls through the plain interface raise no events.
  int fired = 0;
  ASSERT_TRUE(layer_
                  ->DefineRule("watch", "Sensor", "report",
                               LayeredAdbms::Coupling::kImmediate, nullptr,
                               [&](ClosedDb&, const std::vector<Value>&) {
                                 fired++;
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_TRUE(layer_->Begin().ok());
  auto oid = db_->PersistNew("Sensor", {});
  // Application (or another tool) calls the closed API directly.
  ASSERT_TRUE(db_->Invoke(*oid, "report", {Value(99)}).ok());
  EXPECT_EQ(fired, 0);  // silently missed
  ASSERT_TRUE(layer_->Commit().ok());
}

TEST_F(LayeredTest, DeferredRulesRunSeriallyAtCommit) {
  std::vector<int> seen;
  ASSERT_TRUE(layer_
                  ->DefineRule("def", "Sensor", "report",
                               LayeredAdbms::Coupling::kDeferred, nullptr,
                               [&](ClosedDb&, const std::vector<Value>& args) {
                                 seen.push_back(
                                     static_cast<int>(args[0].as_int()));
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_TRUE(layer_->Begin().ok());
  auto oid = db_->PersistNew("Sensor", {});
  for (int v : {1, 2, 3}) {
    ASSERT_TRUE(
        layer_->WrappedInvoke(*oid, "Sensor", "report", {Value(v)}).ok());
  }
  EXPECT_TRUE(seen.empty());
  ASSERT_TRUE(layer_->Commit().ok());
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST_F(LayeredTest, AbortDropsDeferredRules) {
  int fired = 0;
  ASSERT_TRUE(layer_
                  ->DefineRule("def", "Sensor", "report",
                               LayeredAdbms::Coupling::kDeferred, nullptr,
                               [&](ClosedDb&, const std::vector<Value>&) {
                                 fired++;
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_TRUE(layer_->Begin().ok());
  auto oid = db_->PersistNew("Sensor", {});
  ASSERT_TRUE(layer_->WrappedInvoke(*oid, "Sensor", "report", {Value(1)}).ok());
  ASSERT_TRUE(layer_->Abort().ok());
  EXPECT_EQ(fired, 0);
}

TEST_F(LayeredTest, WrappedSetAttrAnnouncesStateChange) {
  int fired = 0;
  ASSERT_TRUE(layer_
                  ->DefineRule("state", "Sensor", "set_value",
                               LayeredAdbms::Coupling::kImmediate, nullptr,
                               [&](ClosedDb&, const std::vector<Value>&) {
                                 fired++;
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_TRUE(layer_->Begin().ok());
  auto oid = db_->PersistNew("Sensor", {});
  ASSERT_TRUE(layer_->WrappedSetAttr(*oid, "Sensor", "value", Value(7)).ok());
  EXPECT_EQ(fired, 1);
  // Direct SetAttr misses detection (low-level value change, §4).
  ASSERT_TRUE(db_->SetAttr(*oid, "value", Value(8)).ok());
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(layer_->Commit().ok());
}

}  // namespace
}  // namespace reach
