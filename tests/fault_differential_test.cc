// Differential test for §6.4 multi-rule execution: with the *same* seeded
// fault schedule injected into rule subtransactions, the serial ring
// sequence and the parallel sibling-subtransaction scheduler must converge
// to the same final database state. This leans on keyed probability
// injection — the abort decision hashes (seed, rule, occurrence), so it is
// identical no matter which thread evaluates it or in what order.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/reach/reach_db.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {
namespace {

using reach::testing::TempDir;
using Execution = RuleEngineOptions::Execution;

constexpr int kCounters = 5;
constexpr int kTicks = 30;

// Build a fresh database, fire kTicks method events against kCounters
// independent immediate rules (rule i increments counter i) under a 35%
// keyed-abort probability on rule.subtxn.exec, and return the final counter
// values. A rule whose subtransaction draws an injected abort contributes
// nothing for that firing; everything else must land.
std::vector<int64_t> RunMode(Execution mode, uint64_t seed) {
  TempDir dir;
  ReachOptions options;
  options.events.async_composition = false;
  options.rules.multi_rule_execution = mode;
  options.rules.parallel_rule_threads = 4;
  auto db_or = ReachDb::Open(dir.DbPath(), options);
  EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(*db_or);

  EXPECT_TRUE(db->RegisterClass(
                    ClassBuilder("Counter")
                        .Attribute("n", ValueType::kInt, Value(0))
                        .Method("tick", [](Session&, DbObject&,
                                           const std::vector<Value>&)
                                    -> Result<Value> { return Value(); }))
                  .ok());
  auto ev = db->events()->DefineMethodEvent("tick_ev", "Counter", "tick");
  EXPECT_TRUE(ev.ok());

  std::vector<Oid> oids;
  {
    Session s(db->database());
    EXPECT_TRUE(s.Begin().ok());
    for (int i = 0; i < kCounters; ++i) {
      auto oid = s.PersistNew("Counter", {});
      EXPECT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    EXPECT_TRUE(s.Commit().ok());
  }
  for (int i = 0; i < kCounters; ++i) {
    RuleSpec spec;
    spec.name = "inc" + std::to_string(i);
    spec.event = *ev;
    spec.coupling = CouplingMode::kImmediate;
    Oid target = oids[i];
    spec.action = [target](Session& s, const EventOccurrence&) -> Status {
      auto n = s.GetAttr(target, "n");
      REACH_RETURN_IF_ERROR(n.status());
      return s.SetAttr(target, "n", Value(n->as_int() + 1));
    };
    EXPECT_TRUE(db->rules()->DefineRule(std::move(spec)).ok());
  }

  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.SetSeed(seed);
  reg.ArmErrorWithProbability(faults::kRuleSubtxnExec, Status::Code::kAborted,
                              0.35);
  {
    Session s(db->database());
    EXPECT_TRUE(s.Begin().ok());
    for (int t = 0; t < kTicks; ++t) {
      // A failed rule subtransaction surfaces here as a non-OK status (the
      // rule does not abort the triggering transaction); keep ticking.
      (void)s.Invoke(oids[0], "tick", {});
    }
    EXPECT_TRUE(s.Commit().ok());
  }
  reg.DisarmAll();

  std::vector<int64_t> counters;
  {
    Session s(db->database());
    EXPECT_TRUE(s.Begin().ok());
    for (const Oid& oid : oids) {
      auto n = s.GetAttr(oid, "n");
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      counters.push_back(n.ok() ? n->as_int() : -1);
    }
    EXPECT_TRUE(s.Commit().ok());
  }
  return counters;
}

class FaultDifferentialTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(FaultDifferentialTest, SerialAndParallelConvergeUnderInjectedAborts) {
  for (uint64_t seed : {0x5EEDULL, 0xDA7A1ULL, 0x10CA1ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<int64_t> serial = RunMode(Execution::kSerialRingSequence, seed);
    std::vector<int64_t> parallel =
        RunMode(Execution::kParallelSubtransactions, seed);
    EXPECT_EQ(serial, parallel)
        << "serial ring and parallel subtransactions diverged";

    // The schedule must be interesting: some firings aborted, some landed.
    int64_t total = std::accumulate(serial.begin(), serial.end(), int64_t{0});
    EXPECT_GT(total, 0) << "every rule firing was aborted";
    EXPECT_LT(total, int64_t{kCounters} * kTicks)
        << "no rule firing was aborted — injection did not engage";
  }
}

TEST_F(FaultDifferentialTest, SameSeedReproducesSameState) {
  std::vector<int64_t> a = RunMode(Execution::kParallelSubtransactions, 42);
  std::vector<int64_t> b = RunMode(Execution::kParallelSubtransactions, 42);
  EXPECT_EQ(a, b);
}

TEST_F(FaultDifferentialTest, DifferentSeedsProduceDifferentSchedules) {
  // Not guaranteed for arbitrary seed pairs, but these were chosen to
  // differ; equality would signal the seed is being ignored.
  std::vector<int64_t> a = RunMode(Execution::kSerialRingSequence, 1);
  std::vector<int64_t> b = RunMode(Execution::kSerialRingSequence, 2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace reach
