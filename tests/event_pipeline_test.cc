// Concurrency suite for the lock-free event dispatch path (docs/EVENTS.md):
// concurrent Signal across many types and transactions, listener
// registration racing dispatch (snapshot republish vs readers), striped
// per-txn bookkeeping, the work-stealing composition pool, and
// composition-equivalence across the three backends. Run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/work_stealing_pool.h"
#include "core/events/event_manager.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class EventPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.DbPath(), {});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  std::unique_ptr<EventManager> Make(EventManagerOptions opts) {
    return std::make_unique<EventManager>(db_.get(), opts);
  }

  // Inject an occurrence with an explicit transaction and timestamp (the
  // dispatch path does not require a live TransactionManager txn).
  static void SignalOne(EventManager* em, EventTypeId type, TxnId txn,
                        Timestamp ts) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = type;
    occ->txn = txn;
    occ->timestamp = ts;
    em->Signal(std::move(occ));
  }

  // End-of-transaction as the meta bus would announce it.
  static void Commit(EventManager* em, TxnId txn) {
    SentryEvent ev;
    ev.kind = SentryKind::kTxnCommit;
    ev.txn = txn;
    em->OnEvent(ev);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

// -- WorkStealingPool unit coverage ----------------------------------------

TEST(WorkStealingPoolTest, RunsEveryTaskExactlyOnce) {
  std::atomic<uint64_t> sum{0};
  WorkStealingPool<int> pool(4, [&](int& v) {
    sum.fetch_add(static_cast<uint64_t>(v), std::memory_order_relaxed);
  });
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(pool.Submit(p * kPerProducer + i + 1));
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.WaitIdle();
  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  EXPECT_EQ(pool.QueueDepth(), 0u);
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  EXPECT_FALSE(pool.Submit(1));  // after shutdown: rejected, not lost
}

TEST(WorkStealingPoolTest, WorkersSubmitRecursively) {
  // A task submitted from a worker goes to that worker's own queue and
  // still drains; WaitIdle must count it (queued while another runs).
  std::atomic<int> ran{0};
  WorkStealingPool<int>* pool_ptr = nullptr;
  WorkStealingPool<int> pool(2, [&](int& depth) {
    ran.fetch_add(1);
    if (depth > 0) ASSERT_TRUE(pool_ptr->Submit(depth - 1));
  });
  pool_ptr = &pool;
  ASSERT_TRUE(pool.Submit(100));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 101);
}

// -- Concurrent dispatch stress --------------------------------------------

TEST_F(EventPipelineTest, ConcurrentSignalWithRacingRegistration) {
  EventManagerOptions opts;
  opts.composition_mode = CompositionMode::kWorkStealing;
  opts.composition_threads = 2;
  auto em = Make(opts);

  constexpr int kTypes = 8;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  constexpr TxnId kTxns = 16;

  std::vector<EventTypeId> types;
  for (int t = 0; t < kTypes; ++t) {
    auto id = em->DefineMethodEvent("p" + std::to_string(t), "C",
                                    "m" + std::to_string(t));
    ASSERT_TRUE(id.ok());
    types.push_back(*id);
    // Bounded-buffer composite per type: completes every 4th occurrence,
    // single-txn scope so instances stripe over transactions.
    auto comp = em->DefineComposite(
        "h" + std::to_string(t),
        EventExpr::History(EventExpr::Prim(*id), 4),
        CompositeScope::kSingleTxn);
    ASSERT_TRUE(comp.ok());
  }

  std::atomic<uint64_t> listener_hits{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        const EventTypeId type = types[(w + i) % kTypes];
        const TxnId txn = static_cast<TxnId>((w * kPerThread + i) % kTxns) + 1;
        SignalOne(em.get(), type, txn, i + 1);
      }
    });
  }
  // Listener registration (snapshot republish) racing the dispatchers.
  threads.emplace_back([&] {
    for (int i = 0; i < 64; ++i) {
      em->AddEventListener(types[i % kTypes],
                           [&](const EventOccurrencePtr&) {
                             listener_hits.fetch_add(
                                 1, std::memory_order_relaxed);
                           });
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  em->Quiesce();

  const uint64_t primitives = kThreads * kPerThread;
  // Every Signal (primitive or composite completion) is counted once.
  EXPECT_EQ(em->signaled_count(), primitives + em->composite_count());
  // Each (type, txn) instance completes every 4th feed; with the feeds
  // spread evenly the total is within one completion per instance.
  EXPECT_GT(em->composite_count(), 0u);
  EXPECT_LE(em->composite_count(), primitives / 4);
  EXPECT_GE(em->dispatch_republish_count(), 64u + 2 * kTypes);

  // EOT GC across all striped instance maps.
  for (TxnId txn = 1; txn <= kTxns; ++txn) Commit(em.get(), txn);
  em->Quiesce();
  EXPECT_EQ(em->LivePartials(), 0u);
}

TEST_F(EventPipelineTest, StripedTxnBookkeepingMergesOnlyCommitted) {
  EventManagerOptions opts;
  opts.composition_mode = CompositionMode::kWorkStealing;
  auto em = Make(opts);
  auto id = em->DefineMethodEvent("pp", "C", "mm");
  ASSERT_TRUE(id.ok());

  constexpr TxnId kTxns = 40;  // spans all 16 shards multiple times
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (TxnId txn = 1; txn <= kTxns; ++txn) {
        for (int i = 0; i < 5; ++i) {
          SignalOne(em.get(), *id, txn, static_cast<Timestamp>(100 * w + i));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Commit even transactions, abort odd ones.
  for (TxnId txn = 1; txn <= kTxns; ++txn) {
    if (txn % 2 == 0) {
      Commit(em.get(), txn);
    } else {
      SentryEvent ev;
      ev.kind = SentryKind::kTxnAbort;
      ev.txn = txn;
      em->OnEvent(ev);
    }
  }
  em->Quiesce();
  // 4 threads x 20 committed txns x 5 events.
  EXPECT_EQ(em->global_history()->size(), 4u * (kTxns / 2) * 5u);
}

// -- Composition equivalence across backends -------------------------------

// Run the same deterministic feed under every backend and demand identical
// composite completions. Order-sensitive expressions (Seq) use one
// composition worker, which preserves the feed's FIFO order; the
// multi-worker configuration uses an order-insensitive History composite.
struct Completions {
  std::mutex mu;
  std::map<TxnId, int> per_txn;
};

TEST_F(EventPipelineTest, SequenceEquivalenceAcrossBackends) {
  struct Config {
    bool async;
    CompositionMode mode;
  };
  const Config configs[] = {
      {false, CompositionMode::kInline},
      {true, CompositionMode::kCentralPool},
      {true, CompositionMode::kWorkStealing},
  };
  for (ConsumptionPolicy policy :
       {ConsumptionPolicy::kChronicle, ConsumptionPolicy::kRecent}) {
    std::vector<std::map<TxnId, int>> results;
    for (const Config& cfg : configs) {
      EventManagerOptions opts;
      opts.async_composition = cfg.async;
      opts.composition_mode = cfg.mode;
      opts.composition_threads = 1;  // FIFO: Seq is feed-order sensitive
      auto em = Make(opts);
      auto a = em->DefineMethodEvent("ea", "C", "a");
      auto b = em->DefineMethodEvent("eb", "C", "b");
      ASSERT_TRUE(a.ok() && b.ok());
      auto comp = em->DefineComposite(
          "seq_ab", EventExpr::Seq(EventExpr::Prim(*a), EventExpr::Prim(*b)),
          CompositeScope::kSingleTxn, policy);
      ASSERT_TRUE(comp.ok());
      Completions done;
      em->AddEventListener(*comp, [&](const EventOccurrencePtr& occ) {
        std::lock_guard<std::mutex> lock(done.mu);
        done.per_txn[occ->txn]++;
      });
      Timestamp ts = 0;
      for (TxnId txn = 1; txn <= 20; ++txn) {
        for (int k = 0; k < 5; ++k) {
          SignalOne(em.get(), *a, txn, ++ts);
          SignalOne(em.get(), *b, txn, ++ts);
        }
      }
      em->Quiesce();
      for (TxnId txn = 1; txn <= 20; ++txn) Commit(em.get(), txn);
      em->Quiesce();
      EXPECT_EQ(em->LivePartials(), 0u);
      results.push_back(done.per_txn);
    }
    // With a strictly alternating a, b feed, both policies pair each a with
    // the b that follows it: 5 completions per transaction.
    for (const auto& [txn, count] : results[0]) EXPECT_EQ(count, 5) << txn;
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], results[2]);
  }
}

TEST_F(EventPipelineTest, HistoryEquivalenceUnderParallelComposition) {
  // Order-insensitive composite, multi-worker pools, concurrent producers:
  // completion counts must still match the inline reference exactly.
  struct Config {
    bool async;
    CompositionMode mode;
    size_t workers;
  };
  const Config configs[] = {
      {false, CompositionMode::kInline, 1},
      {true, CompositionMode::kCentralPool, 4},
      {true, CompositionMode::kWorkStealing, 4},
  };
  std::vector<std::map<TxnId, int>> results;
  for (const Config& cfg : configs) {
    EventManagerOptions opts;
    opts.async_composition = cfg.async;
    opts.composition_mode = cfg.mode;
    opts.composition_threads = cfg.workers;
    auto em = Make(opts);
    auto id = em->DefineMethodEvent("eh", "C", "h");
    ASSERT_TRUE(id.ok());
    auto comp = em->DefineComposite(
        "hist8", EventExpr::History(EventExpr::Prim(*id), 8),
        CompositeScope::kSingleTxn);
    ASSERT_TRUE(comp.ok());
    Completions done;
    em->AddEventListener(*comp, [&](const EventOccurrencePtr& occ) {
      std::lock_guard<std::mutex> lock(done.mu);
      done.per_txn[occ->txn]++;
    });
    // 4 producers, each with its own transactions: per-txn feed counts are
    // deterministic even though global interleaving is not.
    std::vector<std::thread> producers;
    for (int w = 0; w < 4; ++w) {
      producers.emplace_back([&, w] {
        for (int i = 0; i < 400; ++i) {
          SignalOne(em.get(), *id, static_cast<TxnId>(w * 10 + i % 10) + 1,
                    i + 1);
        }
      });
    }
    for (auto& t : producers) t.join();
    em->Quiesce();
    results.push_back(done.per_txn);
    for (TxnId txn = 1; txn <= 40; ++txn) Commit(em.get(), txn);
    em->Quiesce();
    EXPECT_EQ(em->LivePartials(), 0u);
  }
  // 40 occurrences per (producer, txn) -> exactly 5 completions each.
  for (const auto& [txn, count] : results[0]) EXPECT_EQ(count, 5) << txn;
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

}  // namespace
}  // namespace reach
