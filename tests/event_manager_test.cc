// EventManager: sentry announcements -> occurrences, temporal events on a
// virtual clock, milestones, composite wiring, histories, quiesce.
#include <gtest/gtest.h>

#include <atomic>

#include "core/events/event_manager.h"
#include "oodb/session.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class EventManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.clock = &clock_;
    auto db = Database::Open(dir_.DbPath(), opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->types()
                    ->RegisterClass(
                        ClassBuilder("River")
                            .Attribute("level", ValueType::kInt, Value(0))
                            .Attribute("temp", ValueType::kDouble, Value(20.0))
                            .Method("updateWaterLevel",
                                    [](Session& s, DbObject& self,
                                       const std::vector<Value>& args)
                                        -> Result<Value> {
                                      REACH_RETURN_IF_ERROR(s.SetAttr(
                                          self.oid(), "level", args[0]));
                                      return Value();
                                    })
                            .Build())
                    .ok());
    EventManagerOptions eopts;
    eopts.async_composition = false;  // deterministic for these tests
    em_ = std::make_unique<EventManager>(db_.get(), eopts);
  }

  void TearDown() override {
    em_.reset();
    db_.reset();
  }

  TempDir dir_;
  VirtualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<EventManager> em_;
};

TEST_F(EventManagerTest, MethodEventDetectedThroughSession) {
  auto ev = em_->DefineMethodEvent("water", "River", "updateWaterLevel");
  ASSERT_TRUE(ev.ok());
  std::vector<EventOccurrencePtr> seen;
  em_->AddEventListener(*ev, [&](const EventOccurrencePtr& occ) {
    seen.push_back(occ);
  });

  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.Invoke(*oid, "updateWaterLevel", {Value(35)}).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0]->type, *ev);
  EXPECT_EQ(seen[0]->source, *oid);
  EXPECT_EQ(seen[0]->txn, s.current_txn());
  ASSERT_GE(seen[0]->params.size(), 1u);
  EXPECT_EQ(seen[0]->params[0], Value(35));
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, UnmonitoredMethodRaisesNothing) {
  // No event type registered: the session's sentry fast-path skips the
  // announcement entirely.
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  uint64_t before = db_->bus()->useless_announcements() +
                    db_->bus()->useful_announcements();
  ASSERT_TRUE(s.Invoke(*oid, "updateWaterLevel", {Value(1)}).ok());
  // Only the state-change announcement inside the method could fire; the
  // method-after itself was suppressed by the Monitored() check.
  EXPECT_EQ(em_->signaled_count(), 0u);
  (void)before;
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, StateChangeEventCarriesOldAndNew) {
  auto ev = em_->DefineStateChangeEvent("level_change", "River", "level");
  ASSERT_TRUE(ev.ok());
  std::vector<EventOccurrencePtr> seen;
  em_->AddEventListener(*ev, [&](const EventOccurrencePtr& occ) {
    seen.push_back(occ);
  });
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {{"level", Value(10)}});
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(20)).ok());
  ASSERT_EQ(seen.size(), 1u);
  ASSERT_EQ(seen[0]->params.size(), 2u);
  EXPECT_EQ(seen[0]->params[0], Value(10));  // old
  EXPECT_EQ(seen[0]->params[1], Value(20));  // new
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, FlowEventsPersistDeleteCommitAbort) {
  auto persist_ev = em_->DefineFlowEvent("on_persist", SentryKind::kPersist,
                                         "River");
  auto delete_ev =
      em_->DefineFlowEvent("on_delete", SentryKind::kDelete, "River");
  auto commit_ev =
      em_->DefineFlowEvent("on_commit", SentryKind::kTxnCommit);
  auto abort_ev = em_->DefineFlowEvent("on_abort", SentryKind::kTxnAbort);
  std::atomic<int> persists{0}, deletes{0}, commits{0}, aborts{0};
  em_->AddEventListener(*persist_ev,
                        [&](const EventOccurrencePtr&) { persists++; });
  em_->AddEventListener(*delete_ev,
                        [&](const EventOccurrencePtr&) { deletes++; });
  em_->AddEventListener(*commit_ev,
                        [&](const EventOccurrencePtr&) { commits++; });
  em_->AddEventListener(*abort_ev,
                        [&](const EventOccurrencePtr&) { aborts++; });

  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  EXPECT_EQ(persists.load(), 1);
  ASSERT_TRUE(s.Delete(*oid).ok());
  EXPECT_EQ(deletes.load(), 1);
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(commits.load(), 1);
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Abort().ok());
  EXPECT_EQ(aborts.load(), 1);
}

TEST_F(EventManagerTest, DeletionTriggeredRulesSeeTheObject) {
  // §4: deletion rules were a layered-architecture pain point; in the
  // integrated system the delete event fires before storage reclaim.
  auto delete_ev =
      em_->DefineFlowEvent("del", SentryKind::kDelete, "River");
  std::atomic<bool> object_was_readable{false};
  Session reader(db_.get());
  em_->AddEventListener(*delete_ev, [&](const EventOccurrencePtr& occ) {
    // The announcing transaction still holds the X lock; read through it.
    reader.AdoptTxn(occ->txn);
    auto obj = reader.Fetch(occ->source);
    object_was_readable = obj.ok();
    reader.ReleaseTxn();
  });
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {{"level", Value(5)}});
  ASSERT_TRUE(s.Delete(*oid).ok());
  EXPECT_TRUE(object_was_readable.load());
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, AbsoluteTemporalEventFires) {
  auto ev = em_->DefineAbsoluteEvent("at_1000", 1000);
  ASSERT_TRUE(ev.ok());
  std::atomic<int> fired{0};
  em_->AddEventListener(*ev, [&](const EventOccurrencePtr& occ) {
    EXPECT_EQ(occ->txn, kNoTxn);
    fired++;
  });
  clock_.Advance(500);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fired.load(), 0);
  clock_.Advance(600);  // now = 1100 >= 1000
  for (int i = 0; i < 100 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(EventManagerTest, PeriodicTemporalEventRepeats) {
  auto ev = em_->DefinePeriodicEvent("tick", 100);
  std::atomic<int> fired{0};
  em_->AddEventListener(*ev, [&](const EventOccurrencePtr&) { fired++; });
  for (int i = 0; i < 5; ++i) {
    clock_.Advance(100);
    for (int j = 0; j < 100 && fired.load() <= i; ++j) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_GE(fired.load(), 5);
}

TEST_F(EventManagerTest, RelativeEventFiresAfterAnchor) {
  auto anchor = em_->DefineMethodEvent("anchor", "River", "updateWaterLevel");
  auto rel = em_->DefineRelativeEvent("anchored", *anchor, 200);
  ASSERT_TRUE(rel.ok());
  std::atomic<int> fired{0};
  em_->AddEventListener(*rel, [&](const EventOccurrencePtr&) { fired++; });

  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.Invoke(*oid, "updateWaterLevel", {Value(1)}).ok());
  ASSERT_TRUE(s.Commit().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(fired.load(), 0);
  clock_.Advance(250);
  for (int i = 0; i < 100 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(EventManagerTest, MilestoneFiresWhenMarkerMissed) {
  auto marker = em_->DefineMethodEvent("marker", "River", "updateWaterLevel");
  auto milestone = em_->DefineMilestone("deadline", *marker, 1000);
  ASSERT_TRUE(milestone.ok());
  std::atomic<int> missed{0};
  em_->AddEventListener(*milestone, [&](const EventOccurrencePtr& occ) {
    ASSERT_EQ(occ->params.size(), 1u);
    missed++;
  });

  // Transaction that never reaches the marker.
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  clock_.Advance(1100);
  for (int i = 0; i < 100 && missed.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(missed.load(), 1);
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, MilestoneSilentWhenMarkerReached) {
  auto marker = em_->DefineMethodEvent("marker", "River", "updateWaterLevel");
  auto milestone = em_->DefineMilestone("deadline", *marker, 1000);
  std::atomic<int> missed{0};
  em_->AddEventListener(*milestone,
                        [&](const EventOccurrencePtr&) { missed++; });

  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.Invoke(*oid, "updateWaterLevel", {Value(1)}).ok());
  clock_.Advance(1100);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(missed.load(), 0);
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, MilestoneSilentWhenTxnFinished) {
  auto marker = em_->DefineMethodEvent("marker", "River", "updateWaterLevel");
  auto milestone = em_->DefineMilestone("deadline", *marker, 1000);
  std::atomic<int> missed{0};
  em_->AddEventListener(*milestone,
                        [&](const EventOccurrencePtr&) { missed++; });
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Commit().ok());  // finished before the deadline
  clock_.Advance(1100);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(missed.load(), 0);
}

TEST_F(EventManagerTest, CompositeDetectedAcrossSessionOperations) {
  auto level = em_->DefineStateChangeEvent("lvl", "River", "level");
  auto temp = em_->DefineStateChangeEvent("tmp", "River", "temp");
  auto both = em_->DefineComposite(
      "both", EventExpr::And(EventExpr::Prim(*level), EventExpr::Prim(*temp)),
      CompositeScope::kSingleTxn);
  ASSERT_TRUE(both.ok());
  std::vector<EventOccurrencePtr> seen;
  em_->AddEventListener(*both, [&](const EventOccurrencePtr& occ) {
    seen.push_back(occ);
  });

  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(30)).ok());
  EXPECT_TRUE(seen.empty());
  ASSERT_TRUE(s.SetAttr(*oid, "temp", Value(26.0)).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0]->type, *both);
  EXPECT_EQ(seen[0]->constituents.size(), 2u);
  EXPECT_EQ(seen[0]->txn, s.current_txn());
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, CompositeOfCompositesCascades) {
  auto level = em_->DefineStateChangeEvent("lvl", "River", "level");
  auto twice = em_->DefineComposite(
      "twice", EventExpr::History(EventExpr::Prim(*level), 2),
      CompositeScope::kSingleTxn);
  auto fourfold = em_->DefineComposite(
      "fourfold", EventExpr::History(EventExpr::Prim(*twice), 2),
      CompositeScope::kSingleTxn);
  ASSERT_TRUE(fourfold.ok());
  std::atomic<int> fired{0};
  em_->AddEventListener(*fourfold,
                        [&](const EventOccurrencePtr&) { fired++; });
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(s.SetAttr(*oid, "level", Value(i)).ok());
  }
  EXPECT_EQ(fired.load(), 1);
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(EventManagerTest, EotCleansSingleTxnPartials) {
  auto level = em_->DefineStateChangeEvent("lvl", "River", "level");
  auto temp = em_->DefineStateChangeEvent("tmp", "River", "temp");
  auto both = em_->DefineComposite(
      "both", EventExpr::And(EventExpr::Prim(*level), EventExpr::Prim(*temp)),
      CompositeScope::kSingleTxn);
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(1)).ok());
  EXPECT_EQ(em_->LivePartials(), 1u);
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(em_->LivePartials(), 0u);
  EXPECT_GE(em_->CompositorOf(*both)->stats().discarded_at_eot, 1u);
}

TEST_F(EventManagerTest, HistoriesMaintained) {
  auto level = em_->DefineStateChangeEvent("lvl", "River", "level");
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(1)).ok());
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(2)).ok());
  EXPECT_EQ(em_->HistoryOf(*level)->total(), 2u);
  // Global history is merged only after commit.
  em_->Quiesce();
  EXPECT_EQ(em_->global_history()->OfType(*level).size(), 0u);
  ASSERT_TRUE(s.Commit().ok());
  em_->Quiesce();
  EXPECT_EQ(em_->global_history()->OfType(*level).size(), 2u);
}

TEST_F(EventManagerTest, AbortedTxnEventsNotInGlobalHistory) {
  auto level = em_->DefineStateChangeEvent("lvl", "River", "level");
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(1)).ok());
  ASSERT_TRUE(s.Abort().ok());
  em_->Quiesce();
  EXPECT_EQ(em_->global_history()->OfType(*level).size(), 0u);
  EXPECT_EQ(em_->HistoryOf(*level)->total(), 1u);  // local history keeps it
}

TEST_F(EventManagerTest, ExplicitRaise) {
  auto ev = em_->DefineMethodEvent("signal", "River", "userSignal");
  std::atomic<int> fired{0};
  em_->AddEventListener(*ev, [&](const EventOccurrencePtr&) { fired++; });
  ASSERT_TRUE(em_->Raise(*ev, kNoTxn, {Value(1)}).ok());
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(em_->Raise(9999, kNoTxn).IsNotFound());
}

TEST_F(EventManagerTest, AsyncCompositionDeliversAfterQuiesce) {
  EventManagerOptions eopts;
  eopts.async_composition = true;
  auto em2 = std::make_unique<EventManager>(db_.get(), eopts);
  auto level = em2->DefineStateChangeEvent("lvl2", "River", "level");
  auto two = em2->DefineComposite(
      "two2", EventExpr::History(EventExpr::Prim(*level), 2),
      CompositeScope::kSingleTxn);
  std::atomic<int> fired{0};
  em2->AddEventListener(*two, [&](const EventOccurrencePtr&) { fired++; });
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("River", {});
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(1)).ok());
  ASSERT_TRUE(s.SetAttr(*oid, "level", Value(2)).ok());
  em2->Quiesce();
  EXPECT_EQ(fired.load(), 1);
  ASSERT_TRUE(s.Commit().ok());
}

}  // namespace
}  // namespace reach
