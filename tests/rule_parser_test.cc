// The REACH rule-definition language (§6.1), including the paper's
// WaterLevel example.
#include <gtest/gtest.h>

#include <atomic>

#include "core/reach/reach_db.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class RuleParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ReachOptions options;
    options.events.async_composition = false;
    auto db = ReachDb::Open(dir_.DbPath(), options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(
        db_->RegisterClass(
               ClassBuilder("River")
                   .Attribute("waterLevel", ValueType::kInt, Value(100))
                   .Attribute("waterTemp", ValueType::kDouble, Value(20.0))
                   .Method("updateWaterLevel",
                           [](Session& s, DbObject& self,
                              const std::vector<Value>& args) -> Result<Value> {
                             REACH_RETURN_IF_ERROR(s.SetAttr(
                                 self.oid(), "waterLevel", args[0]));
                             return Value();
                           }))
            .ok());
    ASSERT_TRUE(
        db_->RegisterClass(
               ClassBuilder("Reactor")
                   .Attribute("heatOutput", ValueType::kInt, Value(0))
                   .Attribute("plannedPower", ValueType::kDouble,
                              Value(1000.0))
                   .Method("reducePlannedPower",
                           [](Session& s, DbObject& self,
                              const std::vector<Value>& args) -> Result<Value> {
                             double factor = args[0].AsNumber();
                             double now = self.Get("plannedPower").AsNumber() *
                                          (1.0 - factor);
                             REACH_RETURN_IF_ERROR(s.SetAttr(
                                 self.oid(), "plannedPower", Value(now)));
                             return Value(now);
                           }))
            .ok());

    Session s(db_->database());
    ASSERT_TRUE(s.Begin().ok());
    river_ = *s.PersistNew("River", {});
    reactor_ = *s.PersistNew(
        "Reactor", {{"heatOutput", Value(2000000)}});
    ASSERT_TRUE(s.Bind("BlockA", reactor_).ok());
    ASSERT_TRUE(s.Commit().ok());
  }

  TempDir dir_;
  std::unique_ptr<ReachDb> db_;
  Oid river_, reactor_;
};

TEST_F(RuleParserTest, PaperWaterLevelRule) {
  // The §6.1 example, adapted to attribute access for the condition.
  auto rules = db_->DefineRules(R"(
    rule WaterLevel {
      prio 5;
      decl River *river, int x, Reactor *reactor named "BlockA";
      event after river->updateWaterLevel(x);
      cond imm x < 37 and river.waterTemp > 24.5
               and reactor.heatOutput > 1000000;
      action imm reactor->reducePlannedPower(0.05);
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 1u);
  const Rule* rule = db_->rules()->FindRule("WaterLevel");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->spec.priority, 5);
  EXPECT_EQ(rule->spec.coupling, CouplingMode::kImmediate);

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  // Water temp too low: condition false.
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(30)}).ok());
  EXPECT_DOUBLE_EQ(s.GetAttr(reactor_, "plannedPower")->AsNumber(), 1000.0);
  // Raise the temperature; now a low level triggers the reduction.
  ASSERT_TRUE(s.SetAttr(river_, "waterTemp", Value(25.0)).ok());
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(30)}).ok());
  EXPECT_DOUBLE_EQ(s.GetAttr(reactor_, "plannedPower")->AsNumber(), 950.0);
  // Level above the mark: no action.
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(50)}).ok());
  EXPECT_DOUBLE_EQ(s.GetAttr(reactor_, "plannedPower")->AsNumber(), 950.0);
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(RuleParserTest, RegistryFunctionsByNamingConvention) {
  std::atomic<int> cond_calls{0}, action_calls{0};
  ASSERT_TRUE(db_->functions()
                  ->RegisterCondition(
                      "AuditCond",
                      [&](Session&, const EventOccurrence&) -> Result<bool> {
                        cond_calls++;
                        return true;
                      })
                  .ok());
  ASSERT_TRUE(db_->functions()
                  ->RegisterAction("AuditAction",
                                   [&](Session&, const EventOccurrence&) {
                                     action_calls++;
                                     return Status::OK();
                                   })
                  .ok());
  auto rules = db_->DefineRules(R"(
    rule Audit {
      decl River *river, int x;
      event after river->updateWaterLevel(x);
      cond imm;
      action imm;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(1)}).ok());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(cond_calls.load(), 1);
  EXPECT_EQ(action_calls.load(), 1);
}

TEST_F(RuleParserTest, SetActionAndStateChangeEvent) {
  auto rules = db_->DefineRules(R"(
    rule MirrorTemp {
      decl River *river, Reactor *reactor named "BlockA";
      event set river.waterTemp;
      cond deferred river.waterTemp > 30;
      action deferred set reactor.heatOutput = 0;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.SetAttr(river_, "waterTemp", Value(35.0)).ok());
  // Deferred: not yet.
  EXPECT_EQ(s.GetAttr(reactor_, "heatOutput")->as_int(), 2000000);
  ASSERT_TRUE(s.Commit().ok());
  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  EXPECT_EQ(check.GetAttr(reactor_, "heatOutput")->as_int(), 0);
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(RuleParserTest, AbortActionVetoesTransaction) {
  auto rules = db_->DefineRules(R"(
    rule NoDrought {
      decl River *river, int x;
      event after river->updateWaterLevel(x);
      cond imm x < 5;
      action imm abort;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(2)}).ok());
  EXPECT_FALSE(db_->database()->txns()->IsActive(s.current_txn()));
  EXPECT_FALSE(s.Commit().ok());
  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  EXPECT_EQ(check.GetAttr(river_, "waterLevel")->as_int(), 100);  // default
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(RuleParserTest, NamedCompositeEvent) {
  auto lvl = db_->events()->DefineStateChangeEvent("lvl", "River",
                                                   "waterLevel");
  auto twice = db_->events()->DefineComposite(
      "TwoLevelChanges", EventExpr::History(EventExpr::Prim(*lvl), 2),
      CompositeScope::kSingleTxn);
  ASSERT_TRUE(twice.ok());
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_->functions()
                  ->RegisterAction("OnTwoAction",
                                   [&](Session&, const EventOccurrence&) {
                                     fired++;
                                     return Status::OK();
                                   })
                  .ok());
  auto rules = db_->DefineRules(R"(
    rule OnTwo {
      event TwoLevelChanges;
      cond deferred;
      action deferred;
    };
  )");
  // cond with no expression and no registered OnTwoCond -> NotFound.
  EXPECT_TRUE(rules.status().IsNotFound());
  rules = db_->DefineRules(R"(
    rule OnTwo {
      event TwoLevelChanges;
      action deferred;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.SetAttr(river_, "waterLevel", Value(1)).ok());
  ASSERT_TRUE(s.SetAttr(river_, "waterLevel", Value(2)).ok());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(RuleParserTest, PersistAndCommitEvents) {
  std::atomic<int> persists{0}, commits{0};
  ASSERT_TRUE(db_->functions()
                  ->RegisterAction("OnPersistAction",
                                   [&](Session&, const EventOccurrence&) {
                                     persists++;
                                     return Status::OK();
                                   })
                  .ok());
  ASSERT_TRUE(db_->functions()
                  ->RegisterAction("OnCommitAction",
                                   [&](Session&, const EventOccurrence&) {
                                     commits++;
                                     return Status::OK();
                                   })
                  .ok());
  auto rules = db_->DefineRules(R"(
    rule OnPersist { event persist River; action immediate; };
    rule OnCommit { event commit; action detached; };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->size(), 2u);
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.PersistNew("River", {}).ok());
  EXPECT_EQ(persists.load(), 1);
  ASSERT_TRUE(s.Commit().ok());
  db_->rules()->WaitDetachedIdle();
  EXPECT_GE(commits.load(), 1);
}

TEST_F(RuleParserTest, InlineCompositeEventExpression) {
  // Composite algebra inline in the rule language: fire when the level
  // changes and THEN the temperature changes, within one transaction.
  (void)db_->events()->DefineStateChangeEvent("LevelSet", "River",
                                              "waterLevel");
  (void)db_->events()->DefineStateChangeEvent("TempSet", "River",
                                              "waterTemp");
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_->functions()
                  ->RegisterAction("LevelThenTempAction",
                                   [&](Session&, const EventOccurrence& occ) {
                                     EXPECT_EQ(occ.constituents.size(), 2u);
                                     fired++;
                                     return Status::OK();
                                   })
                  .ok());
  auto rules = db_->DefineRules(R"(
    rule LevelThenTemp {
      event seq(LevelSet, TempSet);
      action deferred;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  const EventDescriptor* desc =
      db_->events()->registry()->FindByName("ev_LevelThenTemp_composite");
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->scope, CompositeScope::kSingleTxn);

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.SetAttr(river_, "waterLevel", Value(1)).ok());
  ASSERT_TRUE(s.SetAttr(river_, "waterTemp", Value(2.0)).ok());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(RuleParserTest, InlineCompositeWithModifiers) {
  (void)db_->events()->DefineStateChangeEvent("LevelSet", "River",
                                              "waterLevel");
  std::atomic<int> fired{0};
  ASSERT_TRUE(db_->functions()
                  ->RegisterAction("ThreeDropsAction",
                                   [&](Session&, const EventOccurrence&) {
                                     fired++;
                                     return Status::OK();
                                   })
                  .ok());
  auto rules = db_->DefineRules(R"(
    rule ThreeDrops {
      event times(3, LevelSet) within 10 s using chronicle same object;
      action detached;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  const EventDescriptor* desc =
      db_->events()->registry()->FindByName("ev_ThreeDrops_composite");
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->scope, CompositeScope::kCrossTxn);
  EXPECT_EQ(desc->validity_us, 10 * 1000000);
  EXPECT_EQ(desc->expr->correlation(), Correlation::kSameSource);

  // Three level changes across three transactions, same object: fires.
  Session s(db_->database());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.SetAttr(river_, "waterLevel", Value(i)).ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  db_->Drain();
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(RuleParserTest, InlineCompositeParseErrors) {
  EXPECT_TRUE(db_->DefineRules(R"(
      rule Bad { event seq(NoSuchEvent, AlsoMissing); action imm abort; };
    )").status().IsNotFound());
  EXPECT_TRUE(db_->DefineRules(R"(
      rule Bad { event times(0, commitx); action imm abort; };
    )").status().IsInvalidArgument());
  (void)db_->events()->DefineStateChangeEvent("LevelSet", "River",
                                              "waterLevel");
  EXPECT_TRUE(db_->DefineRules(R"(
      rule Bad { event seq(LevelSet); action imm abort; };
    )").status().IsInvalidArgument());  // missing second operand
  EXPECT_TRUE(db_->DefineRules(R"(
      rule Bad {
        event seq(LevelSet, LevelSet) within 10 parsecs;
        action imm abort;
      };
    )").status().IsInvalidArgument());  // bad time unit
}

TEST_F(RuleParserTest, ExistsQueryCondition) {
  // §7 extension: ECA + OQL[C++] — condition as a query existence test.
  auto rules = db_->DefineRules(R"(
    rule HotReactors {
      decl River *river, int x;
      event after river->updateWaterLevel(x);
      cond imm exists (select * from Reactor as r
                       where r.heatOutput > 1000000);
      action imm set river.waterTemp = 99.0;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(10)}).ok());
  EXPECT_DOUBLE_EQ(s.GetAttr(river_, "waterTemp")->AsNumber(), 99.0);
  // Cool the reactor below the threshold: the condition turns false.
  ASSERT_TRUE(s.SetAttr(reactor_, "heatOutput", Value(0)).ok());
  ASSERT_TRUE(s.SetAttr(river_, "waterTemp", Value(5.0)).ok());
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(10)}).ok());
  EXPECT_DOUBLE_EQ(s.GetAttr(river_, "waterTemp")->AsNumber(), 5.0);
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(RuleParserTest, ParseErrorsAreInformative) {
  EXPECT_TRUE(db_->DefineRules("rule {").status().IsInvalidArgument());
  EXPECT_TRUE(
      db_->DefineRules("rule R { action imm; }").status().IsInvalidArgument());
  EXPECT_TRUE(db_->DefineRules(R"(
      rule R { event after x->m(); action imm call Nothing; };
    )").status().IsInvalidArgument());  // x undeclared
  EXPECT_TRUE(db_->DefineRules(R"(
      rule R {
        decl River *r;
        event after r->m();
        action imm call Nothing;
      };
    )").status().IsNotFound());  // action fn missing
  // Unknown class in decl.
  EXPECT_TRUE(db_->DefineRules(R"(
      rule R {
        decl Spaceship *s;
        event after s->launch();
        action imm abort;
      };
    )").status().IsNotFound());
}

TEST_F(RuleParserTest, ActionCouplingMayNotPrecedeCondition) {
  auto bad = db_->DefineRules(R"(
    rule Bad {
      decl River *river, int x;
      event after river->updateWaterLevel(x);
      cond deferred x < 10;
      action imm abort;
    };
  )");
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST_F(RuleParserTest, MultipleRulesInOneSource) {
  auto rules = db_->DefineRules(R"(
    rule A {
      decl River *river, int x;
      event after river->updateWaterLevel(x);
      action imm set river.waterTemp = 1.0;
    };
    rule B {
      prio 2;
      decl River *river, int x;
      event after river->updateWaterLevel(x);
      action imm set river.waterTemp = 2.0;
    };
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->size(), 2u);
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(river_, "updateWaterLevel", {Value(9)}).ok());
  // B has higher priority, runs first; A overwrites.
  EXPECT_DOUBLE_EQ(s.GetAttr(river_, "waterTemp")->AsNumber(), 1.0);
  ASSERT_TRUE(s.Commit().ok());
}

}  // namespace
}  // namespace reach
