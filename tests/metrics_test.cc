// Observability layer: histogram bucket math and percentile estimates,
// concurrent recording (the sharded histogram is exercised under TSan by
// the sanitizer CI job), snapshot-while-recording, registry JSON output,
// and the disabled-mode no-op guarantees the hot paths rely on.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/pipeline_span.h"

namespace reach::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Instance().SetEnabled(true);
    MetricsRegistry::Instance().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Instance().SetEnabled(false);
    MetricsRegistry::Instance().ResetAll();
  }
};

TEST_F(MetricsTest, CounterBasics) {
  Counter* c = MetricsRegistry::Instance().counter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Instance().counter("test.stable");
  Counter* b = MetricsRegistry::Instance().counter("test.stable");
  EXPECT_EQ(a, b);
  Histogram* ha = MetricsRegistry::Instance().histogram("test.stable.h");
  Histogram* hb = MetricsRegistry::Instance().histogram("test.stable.h");
  EXPECT_EQ(ha, hb);
}

TEST_F(MetricsTest, BucketIndexRoundTrips) {
  // Values below kSubBuckets are exact (one bucket per value).
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    size_t idx = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(idx), v) << "v=" << v;
  }
  // Above that, the lower bound never exceeds the value and the next
  // bucket's lower bound is strictly greater (value falls inside bucket).
  for (uint64_t v : {8ull, 9ull, 15ull, 16ull, 100ull, 1023ull, 1024ull,
                     123456789ull, ~0ull}) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kNumBuckets) << "v=" << v;
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << "v=" << v;
    if (idx + 1 < Histogram::kNumBuckets) {
      EXPECT_GT(Histogram::BucketLowerBound(idx + 1), v) << "v=" << v;
    }
  }
}

TEST_F(MetricsTest, HistogramSmallValuePercentilesAreExact) {
  Histogram h;
  // 1..7 recorded once each: values < 8 land in exact buckets.
  for (uint64_t v = 1; v <= 7; ++v) h.RecordAlways(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.sum, 28u);
  EXPECT_EQ(snap.max, 7u);
  EXPECT_EQ(snap.ValueAtPercentile(50), 4u);
  EXPECT_EQ(snap.ValueAtPercentile(100), 7u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 4.0);
}

TEST_F(MetricsTest, HistogramPercentileLowerBoundError) {
  Histogram h;
  // Uniform 1..1000: percentile estimates are lower bounds within one
  // sub-bucket (<= 12.5% relative error).
  for (uint64_t v = 1; v <= 1000; ++v) h.RecordAlways(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000u);
  for (double p : {50.0, 95.0, 99.0}) {
    uint64_t exact = static_cast<uint64_t>(p * 10);  // p% of 1..1000
    uint64_t est = snap.ValueAtPercentile(p);
    EXPECT_LE(est, exact) << "p=" << p;
    EXPECT_GE(est, exact - exact / 8) << "p=" << p;
  }
}

TEST_F(MetricsTest, EmptyHistogramSnapshot) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.ValueAtPercentile(50), 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST_F(MetricsTest, DisabledModeIsNoOp) {
  MetricsRegistry::Instance().SetEnabled(false);
  Counter* c = MetricsRegistry::Instance().counter("test.disabled.c");
  Histogram* h = MetricsRegistry::Instance().histogram("test.disabled.h");
  c->Inc();
  h->Record(123);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
  // The stamping idiom returns 0 (= unmeasured) while disabled...
  EXPECT_EQ(NowNanosIfEnabled(), 0u);
  // ...and span recording from an unmeasured origin stays a no-op.
  RecordSpanSince(h, 0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  // A ScopedLatencyTimer constructed while disabled never records, even if
  // metrics get enabled before it destructs.
  {
    ScopedLatencyTimer timer(h);
    MetricsRegistry::Instance().SetEnabled(true);
  }
  EXPECT_EQ(h->Snapshot().count, 0u);
}

TEST_F(MetricsTest, ScopedLatencyTimerRecords) {
  Histogram* h = MetricsRegistry::Instance().histogram("test.timer.h");
  { ScopedLatencyTimer timer(h); }
  EXPECT_EQ(h->Snapshot().count, 1u);
}

TEST_F(MetricsTest, ConcurrentRecording) {
  Histogram* h = MetricsRegistry::Instance().histogram("test.mt.h");
  Counter* c = MetricsRegistry::Instance().counter("test.mt.c");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->RecordAlways(static_cast<uint64_t>(t) * kPerThread + i);
        c->IncAlways();
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max, kThreads * kPerThread - 1);
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, SnapshotWhileRecording) {
  // Snapshots taken concurrently with recorders must be internally sane
  // (no torn counters, count monotonically increasing) — this is the
  // pattern the REACH_METRICS dump hook and tests rely on.
  Histogram* h = MetricsRegistry::Instance().histogram("test.live.h");
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    // do-while: at least one record even if the main thread finishes its
    // snapshots before this thread gets scheduled.
    uint64_t v = 0;
    do {
      h->RecordAlways(v++);
    } while (!stop.load(std::memory_order_relaxed));
  });
  uint64_t last_count = 0;
  for (int i = 0; i < 100; ++i) {
    HistogramSnapshot snap = h->Snapshot();
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
    uint64_t bucket_total = 0;
    for (uint64_t b : snap.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, snap.count);
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
  EXPECT_GT(h->Snapshot().count, 0u);
}

TEST_F(MetricsTest, SnapshotJsonShape) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.counter("test.json.counter")->Inc(3);
  reg.gauge("test.json.gauge")->Set(-7);
  Histogram* h = reg.histogram("test.json.hist");
  for (uint64_t v = 1; v <= 100; ++v) h->RecordAlways(v);
  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.counter\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.gauge\": -7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
}

TEST_F(MetricsTest, DumpJsonWritesFile) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.counter("test.dump.counter")->Inc();
  std::string path = ::testing::TempDir() + "/reach_metrics_dump.json";
  ASSERT_TRUE(reg.DumpJson(path));
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  std::remove(path.c_str());
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("test.dump.counter"), std::string::npos);
}

TEST_F(MetricsTest, ResetAllZeroesInPlace) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.counter("test.reset.c");
  Histogram* h = reg.histogram("test.reset.h");
  c->Inc(5);
  h->RecordAlways(42);
  reg.ResetAll();
  // Same pointers, zeroed contents.
  EXPECT_EQ(reg.counter("test.reset.c"), c);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
}

TEST_F(MetricsTest, NamesArePrefixedAndSorted) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.counter("test.names.c");
  reg.histogram("test.names.h");
  std::vector<std::string> names = reg.Names();
  bool saw_counter = false, saw_hist = false;
  for (const std::string& n : names) {
    if (n == "counter/test.names.c") saw_counter = true;
    if (n == "histogram/test.names.h") saw_hist = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

TEST_F(MetricsTest, RecordSpanSinceGuards) {
  Histogram* h = MetricsRegistry::Instance().histogram("test.span.h");
  // Origin in the future (clock skew across measurement points) must not
  // underflow into a huge value.
  RecordSpanSince(h, NowNanos() + 1'000'000'000ull);
  HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 0u);
  // Normal case records a plausible delta.
  RecordSpanSince(h, NowNanos());
  EXPECT_EQ(h->Snapshot().count, 2u);
}

}  // namespace
}  // namespace reach::obs
