#include <gtest/gtest.h>

#include "oodb/database.h"
#include "oodb/session.h"
#include "query/expr.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/query_pm.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

TEST(LexerTest, TokenKinds) {
  auto toks = Lex("select x, 42 3.5 \"str\\\"ing\" <= -> a.b // comment");
  ASSERT_TRUE(toks.ok());
  auto& t = *toks;
  EXPECT_TRUE(t[0].IsIdent("select"));
  EXPECT_TRUE(t[1].IsIdent("x"));
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_EQ(t[3].int_value, 42);
  EXPECT_DOUBLE_EQ(t[4].double_value, 3.5);
  EXPECT_EQ(t[5].text, "str\"ing");
  EXPECT_TRUE(t[6].IsSymbol("<="));
  EXPECT_TRUE(t[7].IsSymbol("->"));
  EXPECT_TRUE(t[8].IsIdent("a"));
  EXPECT_TRUE(t[9].IsSymbol("."));
  EXPECT_TRUE(t[10].IsIdent("b"));
  EXPECT_EQ(t[11].type, TokenType::kEnd);
}

TEST(LexerTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("what @ here").ok());
  EXPECT_FALSE(Lex("/* open comment").ok());
}

class FixedEnv : public EvalEnv {
 public:
  Result<Value> Resolve(const std::vector<std::string>& path) override {
    std::string key;
    for (size_t i = 0; i < path.size(); ++i) {
      if (i) key += ".";
      key += path[i];
    }
    auto it = vars.find(key);
    if (it == vars.end()) return Status::NotFound(key);
    return it->second;
  }
  std::unordered_map<std::string, Value> vars;
};

TEST(ExprTest, ArithmeticAndPrecedence) {
  FixedEnv env;
  auto eval = [&](const std::string& s) {
    auto e = ParseExpression(s);
    EXPECT_TRUE(e.ok()) << s;
    return *Evaluate(*e, &env);
  };
  EXPECT_EQ(eval("1 + 2 * 3"), Value(7));
  EXPECT_EQ(eval("(1 + 2) * 3"), Value(9));
  EXPECT_EQ(eval("10 / 4"), Value(2));       // int division
  EXPECT_EQ(eval("10.0 / 4"), Value(2.5));   // double division
  EXPECT_EQ(eval("10 % 3"), Value(1));
  EXPECT_EQ(eval("-3 + 1"), Value(-2));
  EXPECT_EQ(eval("\"a\" + \"b\""), Value("ab"));
}

TEST(ExprTest, ComparisonsAndLogic) {
  FixedEnv env;
  env.vars["x"] = Value(37);
  env.vars["river.waterTemp"] = Value(25.0);
  auto check = [&](const std::string& s, bool expected) {
    auto e = ParseExpression(s);
    ASSERT_TRUE(e.ok()) << s;
    auto r = EvaluateBool(*e, &env);
    ASSERT_TRUE(r.ok()) << s;
    EXPECT_EQ(*r, expected) << s;
  };
  check("x < 40", true);
  check("x < 37", false);
  check("x <= 37", true);
  check("x == 37 and river.waterTemp > 24.5", true);
  check("x != 37 or river.waterTemp > 24.5", true);
  check("not (x == 37)", false);
  check("x > 10 && x < 40", true);
  check("x = 37", true);  // OQL-style equality
}

TEST(ExprTest, NullSemantics) {
  FixedEnv env;
  env.vars["n"] = Value();
  auto check = [&](const std::string& s, bool expected) {
    auto e = ParseExpression(s);
    auto r = EvaluateBool(*e, &env);
    ASSERT_TRUE(r.ok()) << s;
    EXPECT_EQ(*r, expected) << s;
  };
  check("n == null", true);
  check("n != null", false);
  check("n < 5", false);
  check("n > 5", false);
}

TEST(ExprTest, ErrorsSurface) {
  FixedEnv env;
  auto e = ParseExpression("missing + 1");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(Evaluate(*e, &env).status().IsNotFound());
  auto div = ParseExpression("1 / 0");
  EXPECT_TRUE(Evaluate(*div, &env).status().IsInvalidArgument());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1 + 2").ok());
}

TEST(ParserTest, SelectStatementForms) {
  auto s1 = ParseSelect("select * from Reactor");
  ASSERT_TRUE(s1.ok());
  EXPECT_TRUE(s1->items.empty());
  EXPECT_EQ(s1->class_name, "Reactor");
  EXPECT_EQ(s1->alias, "Reactor");
  EXPECT_EQ(s1->where, nullptr);

  auto s2 = ParseSelect(
      "select name, output from Reactor as r where r.output > 100 "
      "order by output desc limit 5");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->items.size(), 2u);
  EXPECT_EQ(s2->alias, "r");
  EXPECT_NE(s2->where, nullptr);
  EXPECT_EQ(s2->order_by.size(), 1u);
  EXPECT_TRUE(s2->order_desc);
  EXPECT_EQ(s2->limit.value(), 5u);

  EXPECT_FALSE(ParseSelect("select from Reactor").ok());
  EXPECT_FALSE(ParseSelect("select * Reactor").ok());
  EXPECT_FALSE(ParseSelect("select * from Reactor trailing").ok());
}

class QueryPmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.DbPath());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->types()
                    ->RegisterClass(
                        ClassBuilder("Stock")
                            .Attribute("symbol", ValueType::kString, Value(""))
                            .Attribute("price", ValueType::kDouble, Value(0.0))
                            .Attribute("volume", ValueType::kInt, Value(0))
                            .Build())
                    .ok());
    session_ = std::make_unique<Session>(db_.get());
    ASSERT_TRUE(session_->Begin().ok());
    const char* symbols[] = {"TI", "IBM", "DEC", "SUN", "HP"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(session_
                      ->PersistNew("Stock",
                                   {{"symbol", Value(symbols[i])},
                                    {"price", Value(10.0 * (i + 1))},
                                    {"volume", Value(100 * i)}})
                      .ok());
    }
  }
  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
  QueryPm qpm_;
};

TEST_F(QueryPmTest, SelectAll) {
  auto r = qpm_.Execute(*session_, "select * from Stock");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 5u);
  EXPECT_FALSE(r->used_index);
}

TEST_F(QueryPmTest, WhereFilters) {
  auto r = qpm_.Execute(*session_,
                        "select symbol from Stock as s where s.price >= 30");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
  for (const auto& row : r->rows) {
    ASSERT_EQ(row.values.size(), 1u);
    EXPECT_TRUE(row.values[0].is_string());
  }
}

TEST_F(QueryPmTest, OrderByAndLimit) {
  auto r = qpm_.Execute(
      *session_, "select symbol, price from Stock order by price desc limit 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0].values[0], Value("HP"));
  EXPECT_EQ(r->rows[1].values[0], Value("SUN"));
}

TEST_F(QueryPmTest, BareAttributeNamesWork) {
  auto r = qpm_.Execute(*session_,
                        "select symbol from Stock where volume == 200");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].values[0], Value("DEC"));
}

TEST_F(QueryPmTest, IndexAcceleratesEquality) {
  ASSERT_TRUE(db_->indexing()
                  ->CreateIndex(session_->current_txn(), "Stock", "symbol")
                  .ok());
  auto r = qpm_.Execute(
      *session_, "select price from Stock as s where s.symbol == \"IBM\"");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_index);
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].values[0], Value(20.0));
  EXPECT_EQ(r->scanned, 1u);  // only the index hit was examined
}

TEST_F(QueryPmTest, ReferenceTraversal) {
  ASSERT_TRUE(db_->types()
                  ->RegisterClass(
                      ClassBuilder("Position")
                          .Attribute("stock", ValueType::kRef, Value())
                          .Attribute("shares", ValueType::kInt, Value(0))
                          .Build())
                  .ok());
  auto ibm = qpm_.Execute(*session_,
                          "select * from Stock where symbol == \"IBM\"");
  ASSERT_TRUE(ibm.ok());
  ASSERT_EQ(ibm->rows.size(), 1u);
  ASSERT_TRUE(session_
                  ->PersistNew("Position", {{"stock", Value(ibm->rows[0].oid)},
                                            {"shares", Value(10)}})
                  .ok());
  auto r = qpm_.Execute(
      *session_,
      "select shares from Position as p where p.stock.symbol == \"IBM\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].values[0], Value(10));
}

TEST(ParserTest, AggregateAndGroupByForms) {
  auto s = ParseSelect(
      "select symbol, count(*), avg(price) from Stock group by symbol");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->items.size(), 3u);
  EXPECT_EQ(s->items[0].kind, SelectItem::Kind::kAttr);
  EXPECT_EQ(s->items[1].kind, SelectItem::Kind::kCount);
  EXPECT_TRUE(s->items[1].attr.empty());
  EXPECT_EQ(s->items[2].kind, SelectItem::Kind::kAvg);
  EXPECT_EQ(s->items[2].attr, "price");
  EXPECT_EQ(s->group_by, "symbol");
  EXPECT_FALSE(ParseSelect("select nope(*) from Stock").ok());
  EXPECT_FALSE(ParseSelect("select sum(*) from Stock").ok());
}

TEST_F(QueryPmTest, AggregatesWithoutGrouping) {
  auto r = qpm_.Execute(
      *session_,
      "select count(*), sum(volume), avg(price), min(price), max(price) "
      "from Stock");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  const auto& v = r->rows[0].values;
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], Value(5));           // count
  EXPECT_EQ(v[1], Value(1000.0));      // sum of volumes 0+100+...+400
  EXPECT_EQ(v[2], Value(30.0));        // avg of 10..50
  EXPECT_EQ(v[3], Value(10.0));        // min
  EXPECT_EQ(v[4], Value(50.0));        // max
}

TEST_F(QueryPmTest, GroupByAggregates) {
  // Two groups by price band: make a second object share a symbol.
  ASSERT_TRUE(session_
                  ->PersistNew("Stock", {{"symbol", Value("TI")},
                                         {"price", Value(60.0)},
                                         {"volume", Value(7)}})
                  .ok());
  auto r = qpm_.Execute(
      *session_,
      "select symbol, count(*), max(price) from Stock as s "
      "where s.symbol == \"TI\" group by symbol");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].values[0], Value("TI"));
  EXPECT_EQ(r->rows[0].values[1], Value(2));
  EXPECT_EQ(r->rows[0].values[2], Value(60.0));

  auto all = qpm_.Execute(*session_,
                          "select symbol, count(*) from Stock group by "
                          "symbol");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 5u);  // five distinct symbols
}

TEST_F(QueryPmTest, LookupIntoReusesBufferAndMatchesCopyingOverloads) {
  ASSERT_TRUE(db_->indexing()
                  ->CreateIndex(session_->current_txn(), "Stock", "symbol")
                  .ok());
  ASSERT_TRUE(db_->indexing()
                  ->CreateIndex(session_->current_txn(), "Stock", "price",
                                IndexKind::kOrdered)
                  .ok());
  // Buffer with pre-existing garbage and capacity: Into variants must
  // clear before filling and may reuse the allocation across probes.
  std::vector<Oid> buf(64);
  const Oid* data_before = buf.data();
  ASSERT_TRUE(
      db_->indexing()->LookupInto("Stock", "symbol", Value("IBM"), &buf).ok());
  auto copied = db_->indexing()->Lookup("Stock", "symbol", Value("IBM"));
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(buf, *copied);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.data(), data_before);  // capacity reused, no realloc

  Value lo(20.0), hi(40.0);
  ASSERT_TRUE(db_->indexing()
                  ->RangeLookupInto("Stock", "price", &lo, true, &hi, true,
                                    &buf)
                  .ok());
  auto range =
      db_->indexing()->RangeLookup("Stock", "price", &lo, true, &hi, true);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(buf, *range);
  EXPECT_EQ(buf.size(), 3u);  // prices 20, 30, 40
  EXPECT_EQ(buf.data(), data_before);

  // Missing index surfaces NotFound without disturbing the buffer's use.
  EXPECT_TRUE(db_->indexing()
                  ->LookupInto("Stock", "volume", Value(0), &buf)
                  .IsNotFound());
}

TEST_F(QueryPmTest, OrderedIndexServesRangePredicates) {
  ASSERT_TRUE(db_->indexing()
                  ->CreateIndex(session_->current_txn(), "Stock", "price",
                                IndexKind::kOrdered)
                  .ok());
  auto r = qpm_.Execute(*session_,
                        "select symbol from Stock as s where s.price >= 30");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->used_index);
  EXPECT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->scanned, 3u);  // range pruned the scan

  auto lt = qpm_.Execute(*session_,
                         "select symbol from Stock where price < 20");
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE(lt->used_index);
  ASSERT_EQ(lt->rows.size(), 1u);
  EXPECT_EQ(lt->rows[0].values[0], Value("TI"));

  // Flipped literal side normalizes the operator: 40 <= price.
  auto flipped = qpm_.Execute(
      *session_, "select symbol from Stock as s where 40 <= s.price");
  ASSERT_TRUE(flipped.ok());
  EXPECT_TRUE(flipped->used_index);
  EXPECT_EQ(flipped->rows.size(), 2u);

  // Maintenance: a price change moves the object between ranges.
  auto hp = qpm_.Execute(*session_,
                         "select * from Stock where symbol == \"HP\"");
  ASSERT_TRUE(hp.ok());
  ASSERT_EQ(hp->rows.size(), 1u);
  ASSERT_TRUE(session_->SetAttr(hp->rows[0].oid, "price", Value(5.0)).ok());
  auto cheap = qpm_.Execute(*session_,
                            "select symbol from Stock where price < 10");
  ASSERT_TRUE(cheap.ok());
  ASSERT_EQ(cheap->rows.size(), 1u);
  EXPECT_EQ(cheap->rows[0].values[0], Value("HP"));
}

TEST_F(QueryPmTest, OrderedIndexRolledBackOnAbort) {
  ASSERT_TRUE(db_->indexing()
                  ->CreateIndex(session_->current_txn(), "Stock", "price",
                                IndexKind::kOrdered)
                  .ok());
  ASSERT_TRUE(session_->Commit().ok());
  ASSERT_TRUE(session_->Begin().ok());
  auto hp = qpm_.Execute(*session_,
                         "select * from Stock where symbol == \"HP\"");
  ASSERT_TRUE(session_->SetAttr(hp->rows[0].oid, "price", Value(1.0)).ok());
  ASSERT_TRUE(session_->Abort().ok());
  ASSERT_TRUE(session_->Begin().ok());
  Value ten(10.0);
  auto cheap = db_->indexing()->RangeLookup("Stock", "price", nullptr, true,
                                            &ten, false);
  ASSERT_TRUE(cheap.ok());
  EXPECT_TRUE(cheap->empty());  // rollback restored price 50
}

TEST_F(QueryPmTest, NonAggregateItemMustBeGroupKey) {
  auto r = qpm_.Execute(*session_,
                        "select volume, count(*) from Stock group by symbol");
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(QueryPmTest, UnknownClassOrAttrRejected) {
  EXPECT_TRUE(
      qpm_.Execute(*session_, "select * from Nothing").status().IsNotFound());
  EXPECT_TRUE(qpm_.Execute(*session_, "select nope from Stock")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace reach
