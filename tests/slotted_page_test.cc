#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace reach {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) { sp_.Init(); }
  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, InitProducesEmptyPage) {
  EXPECT_TRUE(sp_.IsInitialized());
  EXPECT_EQ(sp_.slot_count(), 0);
  EXPECT_GT(sp_.FreeSpaceForInsert(), 3900u);
}

TEST_F(SlottedPageTest, UninitializedPageDetected) {
  Page fresh;
  SlottedPage sp(&fresh);
  EXPECT_FALSE(sp.IsInitialized());
}

TEST_F(SlottedPageTest, InsertAndRead) {
  std::string payload = "hello world";
  auto slot = sp_.Insert(payload.data(), payload.size(), SlotFlag::kLive);
  ASSERT_TRUE(slot.ok());
  std::string out;
  SlotFlag flag;
  ASSERT_TRUE(sp_.Read(*slot, &out, &flag).ok());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(flag, SlotFlag::kLive);
}

TEST_F(SlottedPageTest, GenerationBumpsOnReuse) {
  std::string a = "aaa";
  auto s1 = sp_.Insert(a.data(), a.size(), SlotFlag::kLive);
  ASSERT_TRUE(s1.ok());
  uint16_t gen1 = sp_.Generation(*s1).value();
  ASSERT_TRUE(sp_.Delete(*s1).ok());
  auto s2 = sp_.Insert(a.data(), a.size(), SlotFlag::kLive);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s1);  // slot reused
  EXPECT_EQ(sp_.Generation(*s2).value(), gen1 + 1);
  EXPECT_FALSE(sp_.Matches(*s1, gen1));
  EXPECT_TRUE(sp_.Matches(*s2, gen1 + 1));
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  std::string small = "xy";
  auto slot = sp_.Insert(small.data(), small.size(), SlotFlag::kLive);
  ASSERT_TRUE(slot.ok());
  std::string bigger(100, 'z');
  ASSERT_TRUE(sp_.Update(*slot, bigger.data(), bigger.size()).ok());
  std::string out;
  SlotFlag flag;
  ASSERT_TRUE(sp_.Read(*slot, &out, &flag).ok());
  EXPECT_EQ(out, bigger);
}

TEST_F(SlottedPageTest, UpdateKeepsGeneration) {
  std::string a = "abc";
  auto slot = sp_.Insert(a.data(), a.size(), SlotFlag::kLive);
  uint16_t gen = sp_.Generation(*slot).value();
  std::string b(500, 'b');
  ASSERT_TRUE(sp_.Update(*slot, b.data(), b.size()).ok());
  EXPECT_EQ(sp_.Generation(*slot).value(), gen);
}

TEST_F(SlottedPageTest, DeleteFreesSpaceViaCompaction) {
  std::string chunk(500, 'c');
  std::vector<SlotId> slots;
  for (;;) {
    auto s = sp_.Insert(chunk.data(), chunk.size(), SlotFlag::kLive);
    if (!s.ok()) break;
    slots.push_back(*s);
  }
  ASSERT_GE(slots.size(), 6u);
  // Delete every other cell, then a payload bigger than any single hole
  // must still fit thanks to compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_.Delete(slots[i]).ok());
  }
  std::string big(900, 'B');
  auto s = sp_.Insert(big.data(), big.size(), SlotFlag::kLive);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  std::string out;
  SlotFlag flag;
  ASSERT_TRUE(sp_.Read(*s, &out, &flag).ok());
  EXPECT_EQ(out, big);
  // Remaining original cells intact.
  for (size_t i = 1; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_.Read(slots[i], &out, &flag).ok());
    EXPECT_EQ(out, chunk);
  }
}

TEST_F(SlottedPageTest, ForwardConversionAlwaysFitsInPlace) {
  // Fill the page completely with minimum-size cells.
  std::string tiny = "t";
  std::vector<SlotId> slots;
  for (;;) {
    auto s = sp_.Insert(tiny.data(), tiny.size(), SlotFlag::kLive);
    if (!s.ok()) break;
    slots.push_back(*s);
  }
  ASSERT_FALSE(slots.empty());
  // Even on a packed page every live cell can become a forward stub.
  Oid target{9, 3, 1};
  for (SlotId s : slots) {
    ASSERT_TRUE(sp_.SetForward(s, target).ok());
    std::string out;
    SlotFlag flag;
    ASSERT_TRUE(sp_.Read(s, &out, &flag).ok());
    EXPECT_EQ(flag, SlotFlag::kForward);
    EXPECT_EQ(SlottedPage::DecodeOid(out.data()), target);
  }
}

TEST_F(SlottedPageTest, PlaceAtCreatesIntermediateSlots) {
  std::string data = "recovered";
  ASSERT_TRUE(sp_.PlaceAt(5, 7, data.data(), data.size(), SlotFlag::kLive)
                  .ok());
  EXPECT_EQ(sp_.slot_count(), 6);
  EXPECT_TRUE(sp_.Matches(5, 7));
  std::string out;
  SlotFlag flag;
  ASSERT_TRUE(sp_.Read(5, &out, &flag).ok());
  EXPECT_EQ(out, data);
  // Intermediate slots are free.
  for (SlotId i = 0; i < 5; ++i) {
    EXPECT_FALSE(sp_.Matches(i, 0));
  }
}

TEST_F(SlottedPageTest, PlaceAtIsIdempotent) {
  std::string data = "recovered";
  ASSERT_TRUE(sp_.PlaceAt(2, 3, data.data(), data.size(), SlotFlag::kLive)
                  .ok());
  ASSERT_TRUE(sp_.PlaceAt(2, 3, data.data(), data.size(), SlotFlag::kLive)
                  .ok());
  std::string out;
  SlotFlag flag;
  ASSERT_TRUE(sp_.Read(2, &out, &flag).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(sp_.Generation(2).value(), 3);
}

TEST_F(SlottedPageTest, FreeAtSetsGeneration) {
  std::string data = "x";
  auto s = sp_.Insert(data.data(), data.size(), SlotFlag::kLive);
  ASSERT_TRUE(sp_.FreeAt(*s, 9).ok());
  EXPECT_FALSE(sp_.Matches(*s, 9));  // free slots never match
  // Next insert reuses the slot with generation 10.
  auto s2 = sp_.Insert(data.data(), data.size(), SlotFlag::kLive);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s);
  EXPECT_EQ(sp_.Generation(*s2).value(), 10);
}

TEST_F(SlottedPageTest, OversizedInsertRejected) {
  std::string huge(kPageSize, 'h');
  auto s = sp_.Insert(huge.data(), huge.size(), SlotFlag::kLive);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsOutOfRange());
}

TEST_F(SlottedPageTest, OccupiedSlotsReportsFlags) {
  std::string data = "d";
  auto live = sp_.Insert(data.data(), data.size(), SlotFlag::kLive);
  auto moved = sp_.Insert(data.data(), data.size(), SlotFlag::kMoved);
  auto fwd = sp_.Insert(data.data(), data.size(), SlotFlag::kLive);
  ASSERT_TRUE(sp_.SetForward(*fwd, Oid{1, 1, 1}).ok());
  auto occupied = sp_.OccupiedSlots();
  ASSERT_EQ(occupied.size(), 3u);
  EXPECT_EQ(occupied[*live].second, SlotFlag::kLive);
  EXPECT_EQ(occupied[*moved].second, SlotFlag::kMoved);
  EXPECT_EQ(occupied[*fwd].second, SlotFlag::kForward);
  EXPECT_EQ(sp_.LiveSlots().size(), 1u);
}

TEST_F(SlottedPageTest, OidRoundTrip) {
  Oid oid{123456, 789, 42};
  char buf[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(oid, buf);
  EXPECT_EQ(SlottedPage::DecodeOid(buf), oid);
}

TEST_F(SlottedPageTest, RandomizedFillAndVerify) {
  Random rng(2024);
  std::unordered_map<SlotId, std::string> expected;
  for (int round = 0; round < 2000; ++round) {
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      size_t len = 1 + rng.Uniform(300);
      std::string data;
      for (size_t i = 0; i < len; ++i) {
        data.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      auto s = sp_.Insert(data.data(), data.size(), SlotFlag::kLive);
      if (s.ok()) expected[*s] = data;
    } else if (op == 1 && !expected.empty()) {
      auto it = expected.begin();
      std::advance(it, rng.Uniform(expected.size()));
      size_t len = 1 + rng.Uniform(300);
      std::string data(len, static_cast<char>('A' + rng.Uniform(26)));
      if (sp_.Update(it->first, data.data(), data.size()).ok()) {
        it->second = data;
      }
    } else if (!expected.empty()) {
      auto it = expected.begin();
      std::advance(it, rng.Uniform(expected.size()));
      ASSERT_TRUE(sp_.Delete(it->first).ok());
      expected.erase(it);
    }
    // Invariant: every tracked cell reads back exactly.
    if (round % 100 == 0) {
      for (const auto& [slot, data] : expected) {
        std::string out;
        SlotFlag flag;
        ASSERT_TRUE(sp_.Read(slot, &out, &flag).ok());
        ASSERT_EQ(out, data);
      }
    }
  }
}

}  // namespace
}  // namespace reach
