// Workflow management (§1 names it "an application domain of active
// databases rapidly gaining importance ... event-driven activities with
// temporal constraints").
//
// Scenario: order processing steps must happen in sequence (chronicle
// context — the paper calls chronicle "typically used in workflow
// applications"), and a *milestone* (§3.1) watches each processing
// transaction: if an order transaction has not reached the `approve` step
// within its deadline, a contingency is scheduled.
#include <cstdio>
#include <filesystem>
#include <thread>

#include "core/reach/reach_db.h"

using namespace reach;

namespace {

Status Run(const std::string& base) {
  VirtualClock clock;  // temporal behaviour driven explicitly
  ReachOptions options;
  options.database.clock = &clock;
  options.events.async_composition = false;
  REACH_ASSIGN_OR_RETURN(std::unique_ptr<ReachDb> db,
                         ReachDb::Open(base, std::move(options)));

  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("Order")
          .Attribute("id", ValueType::kInt, Value(0))
          .Attribute("state", ValueType::kString, Value("new"))
          .Attribute("escalations", ValueType::kInt, Value(0))
          .Method("receive",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "state", Value("received")));
                    return Value();
                  })
          .Method("approve",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "state", Value("approved")));
                    return Value();
                  })
          .Method("ship",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "state", Value("shipped")));
                    return Value();
                  })));

  REACH_ASSIGN_OR_RETURN(EventTypeId received,
                         db->events()->DefineMethodEvent("received_ev",
                                                         "Order", "receive"));
  REACH_ASSIGN_OR_RETURN(EventTypeId approved,
                         db->events()->DefineMethodEvent("approved_ev",
                                                         "Order", "approve"));
  REACH_ASSIGN_OR_RETURN(
      EventTypeId shipped,
      db->events()->DefineMethodEvent("shipped_ev", "Order", "ship"));

  // Workflow completion: receive ; approve ; ship — chronicle context so
  // concurrent orders pair their steps first-in-first-out.
  REACH_ASSIGN_OR_RETURN(
      EventTypeId completed,
      db->events()->DefineComposite(
          "order_completed",
          EventExpr::Seq(EventExpr::Prim(received),
                         EventExpr::Seq(EventExpr::Prim(approved),
                                        EventExpr::Prim(shipped))),
          CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
          /*validity=*/3600LL * 1000000));

  std::atomic<int> completions{0};
  RuleSpec done;
  done.name = "ArchiveCompleted";
  done.event = completed;
  done.coupling = CouplingMode::kSequentialCausallyDependent;
  done.action = [&](Session&, const EventOccurrence& occ) -> Status {
    completions++;
    std::printf("    [rule] workflow completed (%zu steps, %zu txns)\n",
                occ.constituents.size(), occ.InvolvedTxns().size());
    return Status::OK();
  };
  REACH_RETURN_IF_ERROR(db->rules()->DefineRule(std::move(done)).status());

  // Milestone: a transaction that begins order processing must reach the
  // approve step within 5 (virtual) seconds, or the deadline watcher
  // raises the milestone-missed event and a detached rule escalates.
  REACH_ASSIGN_OR_RETURN(
      EventTypeId deadline,
      db->events()->DefineMilestone("approval_deadline", approved,
                                    /*deadline_us=*/5LL * 1000000));
  RuleSpec escalate;
  escalate.name = "EscalateLateApproval";
  escalate.event = deadline;
  escalate.coupling = CouplingMode::kDetached;
  escalate.action = [](Session& s, const EventOccurrence&) -> Status {
    REACH_ASSIGN_OR_RETURN(Oid order, s.Lookup("current-order"));
    REACH_ASSIGN_OR_RETURN(Value n, s.GetAttr(order, "escalations"));
    std::printf("    [contingency] approval deadline missed -> escalate\n");
    return s.SetAttr(order, "escalations", Value(n.as_int() + 1));
  };
  REACH_RETURN_IF_ERROR(
      db->rules()->DefineRule(std::move(escalate)).status());

  // --- A fast order: every step on time ----------------------------------
  Session s(db->database());
  REACH_RETURN_IF_ERROR(s.Begin());
  REACH_ASSIGN_OR_RETURN(Oid order1,
                         s.PersistNew("Order", {{"id", Value(1)}}));
  REACH_RETURN_IF_ERROR(s.Bind("current-order", order1));
  REACH_RETURN_IF_ERROR(s.Commit());

  std::printf("-- order 1: receive/approve/ship in separate txns --\n");
  for (const char* step : {"receive", "approve", "ship"}) {
    REACH_RETURN_IF_ERROR(s.Begin());
    REACH_RETURN_IF_ERROR(s.Invoke(order1, step).status());
    REACH_RETURN_IF_ERROR(s.Commit());
    clock.Advance(1000000);  // 1s per step
    db->Drain();
  }

  // --- A slow order: approval misses the deadline ------------------------
  std::printf("-- order 2: stuck before approval --\n");
  REACH_RETURN_IF_ERROR(s.Begin());
  REACH_RETURN_IF_ERROR(s.Invoke(order1, "receive").status());
  // The transaction lingers: advance past the 5s milestone deadline and
  // wait until the deadline watcher has raised the milestone event. (The
  // escalation rule itself blocks on our lock until we commit — reading
  // the order from this thread now would self-deadlock.)
  clock.Advance(6 * 1000000);
  const LocalHistory* milestone_history = db->events()->HistoryOf(deadline);
  for (int i = 0; i < 500 && milestone_history->total() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  REACH_RETURN_IF_ERROR(s.Commit());
  db->Drain();

  REACH_RETURN_IF_ERROR(s.Begin());
  REACH_ASSIGN_OR_RETURN(Value esc, s.GetAttr(order1, "escalations"));
  std::printf("\ncompleted workflows: %d, escalations: %lld\n",
              completions.load(), static_cast<long long>(esc.as_int()));
  REACH_RETURN_IF_ERROR(s.Commit());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string base =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "reach_workflow")
                     .string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  Status st = Run(base);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("workflow example finished OK\n");
  return 0;
}
