// The paper's §6.1 scenario: power-plant operation monitoring.
//
// "Whenever the water level of the river from which the cooling water is
//  drawn reaches a lower mark and the water temperature is above a maximum
//  temperature and the heat-load given off is above a threshold, then the
//  Planned Power Output must be reduced by 5%."
//
// Demonstrates: the WaterLevel rule from the paper (rule language),
// milestones for time-constrained processing, and an exclusive causally
// dependent contingency rule.
#include <cstdio>
#include <filesystem>

#include "core/reach/reach_db.h"

using namespace reach;

namespace {

Status RegisterClasses(ReachDb* db) {
  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("River")
          .Attribute("name", ValueType::kString, Value(""))
          .Attribute("waterLevel", ValueType::kInt, Value(80))
          .Attribute("waterTemp", ValueType::kDouble, Value(18.0))
          .Method("updateWaterLevel",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>& args) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "waterLevel", args[0]));
                    return Value();
                  })
          .Method("updateWaterTemp",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>& args) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "waterTemp", args[0]));
                    return Value();
                  })));
  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("Reactor")
          .Attribute("name", ValueType::kString, Value(""))
          .Attribute("heatOutput", ValueType::kInt, Value(0))
          .Attribute("plannedPower", ValueType::kDouble, Value(1000.0))
          .Attribute("scrams", ValueType::kInt, Value(0))
          .Method("reducePlannedPower",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>& args) -> Result<Value> {
                    double factor = args[0].AsNumber();
                    double now = self.Get("plannedPower").AsNumber() *
                                 (1.0 - factor);
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "plannedPower", Value(now)));
                    std::printf(
                        "    [rule] planned power reduced by %.0f%% -> "
                        "%.1f MW\n",
                        factor * 100, now);
                    return Value(now);
                  })
          .Method("scram",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "scrams",
                                  Value(self.Get("scrams").as_int() + 1)));
                    std::printf("    [contingency] reactor scrammed!\n");
                    return Value();
                  })));
  // The contingency journal lives outside the monitoring rules' working
  // set: an exclusive causally dependent rule must not contend with its
  // trigger (docs/ARCHITECTURE.md, "Cautions").
  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("EmergencyLog")
          .Attribute("scramOrders", ValueType::kInt, Value(0))));
  return Status::OK();
}

Status Run(const std::string& base) {
  ReachOptions options;
  options.events.async_composition = false;  // deterministic demo output
  REACH_ASSIGN_OR_RETURN(std::unique_ptr<ReachDb> db,
                         ReachDb::Open(base, std::move(options)));
  REACH_RETURN_IF_ERROR(RegisterClasses(db.get()));

  Session session(db->database());
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(Oid river, session.PersistNew(
                                        "River", {{"name", Value("Neckar")}}));
  REACH_ASSIGN_OR_RETURN(
      Oid reactor,
      session.PersistNew("Reactor", {{"name", Value("Block A")},
                                     {"heatOutput", Value(1500000)}}));
  REACH_RETURN_IF_ERROR(session.Bind("BlockA", reactor));
  REACH_ASSIGN_OR_RETURN(Oid emergency_log,
                         session.PersistNew("EmergencyLog", {}));
  REACH_RETURN_IF_ERROR(session.Bind("emergency", emergency_log));
  REACH_RETURN_IF_ERROR(session.Commit());

  // The WaterLevel rule, exactly as in §6.1 (condition via attributes).
  REACH_ASSIGN_OR_RETURN(auto rules, db->DefineRules(R"(
    rule WaterLevel {
      prio 5;
      decl River *river, int x, Reactor *reactor named "BlockA";
      event after river->updateWaterLevel(x);
      cond imm x < 37 and river.waterTemp > 24.5
               and reactor.heatOutput > 1000000;
      action imm reactor->reducePlannedPower(0.05);
    };
  )"));
  std::printf("WaterLevel rule installed (%zu rule object(s))\n",
              rules.size());

  // Contingency: if a monitoring transaction aborts, scram the reactor —
  // exclusive causally dependent coupling (commits only on trigger abort).
  auto level_ev = db->events()->registry()->FindByName(
      "ev_River_updateWaterLevel_after");
  RuleSpec contingency;
  contingency.name = "ScramOnAbort";
  contingency.event = level_ev->id;
  contingency.coupling = CouplingMode::kExclusiveCausallyDependent;
  contingency.action = [emergency_log](Session& s,
                                        const EventOccurrence&) -> Status {
    REACH_ASSIGN_OR_RETURN(Value n, s.GetAttr(emergency_log, "scramOrders"));
    std::printf("    [contingency] scram order issued (tentative)\n");
    return s.SetAttr(emergency_log, "scramOrders", Value(n.as_int() + 1));
  };
  REACH_RETURN_IF_ERROR(db->rules()->DefineRule(std::move(contingency)).status());

  // --- Scenario ----------------------------------------------------------
  // Note: state is inspected in a separate transaction after commit — an
  // exclusive causally dependent rule may hold locks on the reactor while
  // it waits for this transaction's outcome (see docs/ARCHITECTURE.md,
  // "Cautions").
  std::printf("\n-- normal operation: level falls but water is cool --\n");
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_RETURN_IF_ERROR(
      session.Invoke(river, "updateWaterLevel", {Value(30)}).status());
  REACH_RETURN_IF_ERROR(session.Commit());
  db->Drain();
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(Value p1, session.GetAttr(reactor, "plannedPower"));
  std::printf("  planned power: %.1f MW (rule silent: temp 18.0)\n",
              p1.AsNumber());
  REACH_RETURN_IF_ERROR(session.Commit());

  std::printf("\n-- heat wave: temperature above 24.5, level drops --\n");
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_RETURN_IF_ERROR(
      session.Invoke(river, "updateWaterTemp", {Value(26.5)}).status());
  REACH_RETURN_IF_ERROR(
      session.Invoke(river, "updateWaterLevel", {Value(35)}).status());
  REACH_RETURN_IF_ERROR(
      session.Invoke(river, "updateWaterLevel", {Value(33)}).status());
  REACH_RETURN_IF_ERROR(session.Commit());
  db->Drain();
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(Value p2, session.GetAttr(reactor, "plannedPower"));
  std::printf("  planned power after two low readings: %.1f MW\n",
              p2.AsNumber());
  REACH_RETURN_IF_ERROR(session.Commit());

  std::printf("\n-- operator transaction fails: contingency fires --\n");
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_RETURN_IF_ERROR(
      session.Invoke(river, "updateWaterLevel", {Value(31)}).status());
  REACH_RETURN_IF_ERROR(session.Abort());  // e.g. operator error
  db->Drain();

  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(Value scrams,
                         session.GetAttr(emergency_log, "scramOrders"));
  REACH_ASSIGN_OR_RETURN(Value power, session.GetAttr(reactor, "plannedPower"));
  std::printf(
      "\nfinal state: plannedPower=%.1f MW, committed scram orders=%lld\n",
      power.AsNumber(), static_cast<long long>(scrams.as_int()));
  REACH_RETURN_IF_ERROR(session.Commit());

  auto wl = db->rules()->StatsOf("WaterLevel");
  std::printf("WaterLevel rule: triggered=%llu fired=%llu\n",
              static_cast<unsigned long long>(wl->triggered),
              static_cast<unsigned long long>(wl->actions_run));
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string base =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "reach_powerplant")
                     .string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  Status st = Run(base);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("powerplant example finished OK\n");
  return 0;
}
