// Quickstart: open a REACH database, register a class, persist objects,
// define an ECA rule, trigger it, query the result.
//
//   ./quickstart [db-path-base]
#include <cstdio>
#include <filesystem>

#include "core/reach/reach_db.h"

using namespace reach;

namespace {

Status Run(const std::string& base) {
  // 1. Open (or create) the database. <base>.db and <base>.wal appear on
  //    disk; crash recovery runs automatically.
  REACH_ASSIGN_OR_RETURN(std::unique_ptr<ReachDb> db, ReachDb::Open(base));
  std::printf("opened %s.db\n", base.c_str());

  // 2. Register an application class: attributes + methods. Methods run
  //    inside the caller's transaction and are sentried automatically.
  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("Machine")
          .Attribute("name", ValueType::kString, Value(""))
          .Attribute("temperature", ValueType::kDouble, Value(20.0))
          .Attribute("shutdowns", ValueType::kInt, Value(0))
          .Method("heat",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>& args) -> Result<Value> {
                    double t = self.Get("temperature").AsNumber() +
                               args[0].AsNumber();
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "temperature", Value(t)));
                    return Value(t);
                  })
          .Method("shutdown",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(s.SetAttr(
                        self.oid(), "shutdowns",
                        Value(self.Get("shutdowns").as_int() + 1)));
                    REACH_RETURN_IF_ERROR(s.SetAttr(
                        self.oid(), "temperature", Value(20.0)));
                    return Value();
                  })));

  // 3. Define the rule in the REACH rule language: when a machine heats
  //    past 90 degrees, shut it down — immediately, in the same
  //    transaction.
  REACH_ASSIGN_OR_RETURN(auto rules, db->DefineRules(R"(
    rule Overheat {
      prio 10;
      decl Machine *m, double delta;
      event after m->heat(delta);
      cond imm m.temperature > 90.0;
      action imm m->shutdown();
    };
  )"));
  std::printf("defined %zu rule(s)\n", rules.size());

  // 4. Work with persistent objects in a session.
  Session session(db->database());
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(
      Oid press,
      session.PersistNew("Machine", {{"name", Value("press-1")}}));
  REACH_RETURN_IF_ERROR(session.Bind("press-1", press));

  for (int i = 0; i < 5; ++i) {
    REACH_ASSIGN_OR_RETURN(Value t, session.Invoke(press, "heat",
                                                   {Value(25.0)}));
    REACH_ASSIGN_OR_RETURN(Value temp,
                           session.GetAttr(press, "temperature"));
    std::printf("  heat: temperature now %.1f\n", temp.AsNumber());
    (void)t;
  }
  REACH_RETURN_IF_ERROR(session.Commit());

  // 5. Query with the OQL[C++] subset.
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(
      QueryResult q,
      db->Query(session,
                "select name, shutdowns from Machine as m "
                "where m.shutdowns > 0"));
  for (const QueryRow& row : q.rows) {
    std::printf("machine %s was shut down %lld time(s) by the rule\n",
                row.values[0].as_string().c_str(),
                static_cast<long long>(row.values[1].as_int()));
  }
  REACH_RETURN_IF_ERROR(session.Commit());

  const Rule* rule = db->rules()->FindRule("Overheat");
  std::printf("rule stats: triggered=%llu conditions_true=%llu "
              "actions_run=%llu\n",
              static_cast<unsigned long long>(rule->stats.triggered),
              static_cast<unsigned long long>(rule->stats.conditions_true),
              static_cast<unsigned long long>(rule->stats.actions_run));
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string base =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "reach_quickstart")
                     .string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  Status st = Run(base);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("quickstart finished OK\n");
  return 0;
}
