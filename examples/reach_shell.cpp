// Interactive REACH shell — the §7 future-work "user interface for rule
// definition and management", as a terminal tool. Define classes, persist
// objects, write ECA rules in the rule language, run OQL queries, and
// watch rules fire, all against a persistent database.
//
//   ./reach_shell [db-path-base]        (state survives restarts)
//
// Commands:
//   class <Name> [<attr>:<int|double|string|bool|ref> ...]
//   new <Class> [<attr>=<value> ...]        -> prints OID
//   bind <name> <page.slot.gen>             name an object
//   get <name>                               show an object
//   set <name>.<attr> = <value>              write an attribute
//   del <name>                               delete object (keeps binding)
//   rule ...rule-language...;                define rules (single line ok)
//   rules                                    list rules with statistics
//   events                                   list registered event types
//   query <select ...>                       run an OQL[C++] query
//   begin | commit | abort                   manual transaction control
//   history                                  global event history size
//   metrics [on|off|reset]                   observability snapshot (JSON)
//   storage                                  buffer pool / disk backend stats
//   help | quit
//
// Without explicit begin/commit each command runs in its own transaction.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/reach/reach_db.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/storage_manager.h"

using namespace reach;

namespace {

Value ParseValue(const std::string& text) {
  if (text == "true") return Value(true);
  if (text == "false") return Value(false);
  if (text == "null") return Value();
  if (!text.empty() && text.front() == '"' && text.back() == '"') {
    return Value(text.substr(1, text.size() - 2));
  }
  try {
    if (text.find('.') != std::string::npos) return Value(std::stod(text));
    size_t pos = 0;
    int64_t v = std::stoll(text, &pos);
    if (pos == text.size()) return Value(v);
  } catch (...) {
  }
  return Value(text);  // bare word = string
}

ValueType ParseType(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "bool") return ValueType::kBool;
  if (name == "ref") return ValueType::kRef;
  return ValueType::kString;
}

class Shell {
 public:
  explicit Shell(ReachDb* db) : db_(db), session_(db->database()) {}

  void Loop() {
    std::string line;
    std::printf("REACH shell — 'help' for commands\n");
    while (std::printf("reach> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
    if (session_.txn_depth() > 0) {
      std::printf("(aborting open transaction)\n");
      (void)session_.AbortAll();
    }
  }

 private:
  /// Run `fn` in the open transaction, or a one-shot one.
  Status InTxn(const std::function<Status()>& fn) {
    if (session_.txn_depth() > 0) return fn();
    REACH_RETURN_IF_ERROR(session_.Begin());
    Status st = fn();
    if (st.ok()) return session_.Commit();
    (void)session_.Abort();
    return st;
  }

  void Report(const Status& st) {
    if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "class new bind get set del rule rules events query begin commit "
          "abort history stats trace [on|off|clear] "
          "metrics [on|off|reset] storage checkpoint quit\n");
    } else if (cmd == "class") {
      std::string name;
      in >> name;
      ClassBuilder builder(name);
      std::string attr;
      while (in >> attr) {
        size_t colon = attr.find(':');
        std::string aname = attr.substr(0, colon);
        ValueType type = colon == std::string::npos
                             ? ValueType::kString
                             : ParseType(attr.substr(colon + 1));
        Value dflt;
        switch (type) {
          case ValueType::kInt: dflt = Value(0); break;
          case ValueType::kDouble: dflt = Value(0.0); break;
          case ValueType::kBool: dflt = Value(false); break;
          case ValueType::kString: dflt = Value(""); break;
          default: break;
        }
        builder.Attribute(aname, type, dflt);
      }
      Report(db_->RegisterClass(builder));
    } else if (cmd == "new") {
      std::string cls;
      in >> cls;
      std::vector<std::pair<std::string, Value>> attrs;
      std::string kv;
      while (in >> kv) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) continue;
        attrs.emplace_back(kv.substr(0, eq), ParseValue(kv.substr(eq + 1)));
      }
      Report(InTxn([&]() -> Status {
        REACH_ASSIGN_OR_RETURN(Oid oid,
                               session_.PersistNew(cls, std::move(attrs)));
        std::printf("%s\n", oid.ToString().c_str());
        return Status::OK();
      }));
    } else if (cmd == "bind") {
      std::string name, oid_text;
      in >> name >> oid_text;
      unsigned page, slot, gen;
      if (std::sscanf(oid_text.c_str(), "%u.%u.%u", &page, &slot, &gen) !=
          3) {
        std::printf("usage: bind <name> <page.slot.gen>\n");
        return true;
      }
      Oid oid{static_cast<PageId>(page), static_cast<SlotId>(slot),
              static_cast<uint16_t>(gen)};
      Report(InTxn([&] { return session_.Bind(name, oid); }));
    } else if (cmd == "get") {
      std::string name;
      in >> name;
      Report(InTxn([&]() -> Status {
        REACH_ASSIGN_OR_RETURN(auto obj, session_.FetchByName(name));
        std::printf("%s\n", obj->ToString().c_str());
        return Status::OK();
      }));
    } else if (cmd == "set") {
      // set <name>.<attr> = <value>
      std::string target, eq, value_text;
      in >> target >> eq;
      std::getline(in, value_text);
      size_t dot = target.find('.');
      if (dot == std::string::npos || eq != "=") {
        std::printf("usage: set <name>.<attr> = <value>\n");
        return true;
      }
      size_t start = value_text.find_first_not_of(' ');
      value_text =
          start == std::string::npos ? "" : value_text.substr(start);
      Report(InTxn([&]() -> Status {
        REACH_ASSIGN_OR_RETURN(Oid oid,
                               session_.Lookup(target.substr(0, dot)));
        return session_.SetAttr(oid, target.substr(dot + 1),
                                ParseValue(value_text));
      }));
    } else if (cmd == "del") {
      std::string name;
      in >> name;
      Report(InTxn([&]() -> Status {
        REACH_ASSIGN_OR_RETURN(Oid oid, session_.Lookup(name));
        return session_.Delete(oid);
      }));
    } else if (cmd == "rule") {
      std::string rest;
      std::getline(in, rest);
      std::string source = "rule " + rest;
      // Keep reading lines until the closing "};".
      while (source.find("};") == std::string::npos) {
        std::string more;
        std::printf("  ...> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, more)) break;
        source += "\n" + more;
      }
      auto rules = db_->DefineRules(source);
      if (rules.ok()) {
        std::printf("defined %zu rule(s)\n", rules->size());
      } else {
        Report(rules.status());
      }
    } else if (cmd == "rules") {
      for (const std::string& name : db_->rules()->RuleNames()) {
        const Rule* rule = db_->rules()->FindRule(name);
        std::printf("%-20s prio=%-3d %-13s triggered=%llu fired=%llu\n",
                    name.c_str(), rule->spec.priority,
                    CouplingModeName(rule->spec.coupling),
                    static_cast<unsigned long long>(rule->stats.triggered),
                    static_cast<unsigned long long>(rule->stats.actions_run));
      }
    } else if (cmd == "events") {
      for (const EventDescriptor* desc :
           db_->events()->registry()->AllEvents()) {
        std::printf("%-4u %-28s %s\n", desc->id, desc->name.c_str(),
                    EventCategoryName(desc->category));
      }
    } else if (cmd == "query") {
      std::string rest;
      std::getline(in, rest);
      Report(InTxn([&]() -> Status {
        REACH_ASSIGN_OR_RETURN(QueryResult result,
                               db_->Query(session_, "query" == cmd
                                                        ? rest.substr(1)
                                                        : rest));
        for (const QueryRow& row : result.rows) {
          std::string out = row.oid.ToString();
          for (const Value& v : row.values) out += "  " + v.ToString();
          std::printf("%s\n", out.c_str());
        }
        std::printf(
            "(%zu row(s); scanned=%zu morsels=%zu workers=%zu index=%s "
            "time=%.3f ms)\n",
            result.rows.size(), result.scanned, result.morsels,
            result.workers, result.used_index ? "yes" : "no",
            static_cast<double>(result.exec_ns) / 1e6);
        return Status::OK();
      }));
    } else if (cmd == "begin") {
      Report(session_.Begin());
    } else if (cmd == "commit") {
      Report(session_.Commit());
    } else if (cmd == "abort") {
      Report(session_.Abort());
    } else if (cmd == "history") {
      db_->Drain();
      std::printf("%zu committed events in the global history\n",
                  db_->events()->global_history()->size());
    } else if (cmd == "trace") {
      std::string arg;
      in >> arg;
      if (arg == "on") {
        db_->rules()->trace()->set_enabled(true);
        std::printf("rule tracing enabled\n");
      } else if (arg == "off") {
        db_->rules()->trace()->set_enabled(false);
        std::printf("rule tracing disabled\n");
      } else if (arg == "clear") {
        db_->rules()->trace()->Clear();
      } else {
        db_->Drain();
        for (const RuleTraceEntry& entry :
             db_->rules()->trace()->Snapshot()) {
          std::printf("%s\n", entry.ToString().c_str());
        }
      }
    } else if (cmd == "stats") {
      db_->Drain();
      std::printf("%s", db_->StatsReport().c_str());
    } else if (cmd == "metrics") {
      std::string arg;
      in >> arg;
      auto& reg = obs::MetricsRegistry::Instance();
      if (arg == "on") {
        reg.SetEnabled(true);
        std::printf("metrics enabled\n");
      } else if (arg == "off") {
        reg.SetEnabled(false);
        std::printf("metrics disabled\n");
      } else if (arg == "reset") {
        reg.ResetAll();
      } else {
        if (!obs::MetricsEnabled()) {
          std::printf("(metrics are off — 'metrics on' to start recording)\n");
        }
        db_->Drain();
        std::printf("%s\n", reg.SnapshotJson().c_str());
      }
    } else if (cmd == "storage") {
      StorageManager* sm = db_->database()->storage();
      BufferPool* pool = sm->buffer_pool();
      auto wb = pool->writeback_stats();
      std::printf("backend          %s\n", sm->disk()->backend_name());
      std::printf("dirty_ratio      %.3f\n", pool->dirty_ratio());
      std::printf("writeback        %s (watermark %zu%%)\n",
                  wb.enabled ? "on" : "off", wb.watermark_pct);
      std::printf("  pages cleaned  %llu in %llu batches\n",
                  static_cast<unsigned long long>(wb.pages),
                  static_cast<unsigned long long>(wb.batches));
      std::printf("  stall          %.3f ms total\n",
                  static_cast<double>(wb.stall_ns) / 1e6);
      std::printf("  sync fallbacks %llu\n",
                  static_cast<unsigned long long>(wb.sync_fallbacks));
      auto lock_wait = obs::MetricsRegistry::Instance()
                           .histogram(obs::kBufShardLockWaitNs)
                           ->Snapshot();
      if (lock_wait.count == 0) {
        std::printf("shard lock wait  (no samples — 'metrics on' to record)\n");
      } else {
        std::printf(
            "shard lock wait  n=%llu mean=%.0fns p99=%lluns max=%lluns\n",
            static_cast<unsigned long long>(lock_wait.count),
            lock_wait.Mean(),
            static_cast<unsigned long long>(lock_wait.ValueAtPercentile(99)),
            static_cast<unsigned long long>(lock_wait.max));
      }
    } else if (cmd == "checkpoint") {
      Report(db_->Checkpoint());
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
    return true;
  }

  ReachDb* db_;
  Session session_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string base = argc > 1 ? argv[1] : "/tmp/reach_shell";
  auto db = ReachDb::Open(base);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Shell shell(db->get());
  shell.Loop();
  return 0;
}
