// Financial monitoring (the paper motivates commodity trading and the
// "monitoring of the Dow Jones index" as the natural home of the
// *continuous* consumption context, §3.4).
//
// Scenario: every price tick opens a window; if the index drops more than
// 2% within any window of three ticks, an alert position adjustment runs
// as a parallel causally dependent rule (it may proceed concurrently but
// only commits if the feed transaction commits).
#include <cstdio>
#include <filesystem>

#include "core/reach/reach_db.h"

using namespace reach;

namespace {

Status Run(const std::string& base) {
  ReachOptions options;
  options.events.async_composition = false;
  REACH_ASSIGN_OR_RETURN(std::unique_ptr<ReachDb> db,
                         ReachDb::Open(base, std::move(options)));

  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("Index")
          .Attribute("name", ValueType::kString, Value(""))
          .Attribute("value", ValueType::kDouble, Value(0.0))
          .Method("tick",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>& args) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "value", args[0]));
                    return Value();
                  })));
  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("Portfolio")
          .Attribute("exposure", ValueType::kDouble, Value(100.0))
          .Attribute("hedges", ValueType::kInt, Value(0))
          .Method("hedge",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(s.SetAttr(
                        self.oid(), "exposure",
                        Value(self.Get("exposure").AsNumber() * 0.8)));
                    REACH_RETURN_IF_ERROR(s.SetAttr(
                        self.oid(), "hedges",
                        Value(self.Get("hedges").as_int() + 1)));
                    return Value();
                  })));

  Session session(db->database());
  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(
      Oid dow, session.PersistNew("Index", {{"name", Value("DJIA")},
                                            {"value", Value(3800.0)}}));
  REACH_ASSIGN_OR_RETURN(Oid portfolio, session.PersistNew("Portfolio", {}));
  REACH_RETURN_IF_ERROR(session.Bind("portfolio", portfolio));
  REACH_RETURN_IF_ERROR(session.Commit());

  // Composite event: three ticks in a row, continuous context (every tick
  // opens a window), across feed transactions with a 1-minute validity.
  REACH_ASSIGN_OR_RETURN(
      EventTypeId tick_ev,
      db->events()->DefineMethodEvent("tick_ev", "Index", "tick"));
  REACH_ASSIGN_OR_RETURN(
      EventTypeId window_ev,
      db->events()->DefineComposite(
          "three_ticks",
          EventExpr::Seq(EventExpr::Prim(tick_ev),
                         EventExpr::Seq(EventExpr::Prim(tick_ev),
                                        EventExpr::Prim(tick_ev))),
          CompositeScope::kCrossTxn, ConsumptionPolicy::kContinuous,
          /*validity=*/60LL * 1000000));

  RuleSpec drop;
  drop.name = "CrashWatch";
  drop.event = window_ev;
  drop.coupling = CouplingMode::kParallelCausallyDependent;
  drop.condition = [](Session&, const EventOccurrence& occ) -> Result<bool> {
    // Window parameters: first and last tick values of the composite.
    std::vector<const EventOccurrence*> leaves;
    occ.CollectLeaves(&leaves);
    if (leaves.size() < 2 || leaves.front()->params.empty() ||
        leaves.back()->params.empty()) {
      return false;
    }
    double first = leaves.front()->params[0].AsNumber();
    double last = leaves.back()->params[0].AsNumber();
    return last < first * 0.98;  // >2% drop inside the window
  };
  drop.action = [](Session& s, const EventOccurrence&) -> Status {
    REACH_ASSIGN_OR_RETURN(Oid p, s.Lookup("portfolio"));
    auto r = s.Invoke(p, "hedge");
    if (r.ok()) std::printf("    [rule] crash window detected -> hedged\n");
    return r.ok() ? Status::OK() : r.status();
  };
  REACH_RETURN_IF_ERROR(db->rules()->DefineRule(std::move(drop)).status());

  // --- Feed --------------------------------------------------------------
  double prices[] = {3795, 3801, 3797, 3790, 3730, 3689, 3702, 3711};
  for (double price : prices) {
    REACH_RETURN_IF_ERROR(session.Begin());
    REACH_RETURN_IF_ERROR(session.Invoke(dow, "tick", {Value(price)}).status());
    REACH_RETURN_IF_ERROR(session.Commit());
    std::printf("tick %.0f committed\n", price);
    db->Drain();
  }

  REACH_RETURN_IF_ERROR(session.Begin());
  REACH_ASSIGN_OR_RETURN(Value exposure,
                         session.GetAttr(portfolio, "exposure"));
  REACH_ASSIGN_OR_RETURN(Value hedges, session.GetAttr(portfolio, "hedges"));
  std::printf("\nportfolio: exposure=%.1f%% after %lld hedge(s)\n",
              exposure.AsNumber(),
              static_cast<long long>(hedges.as_int()));
  REACH_RETURN_IF_ERROR(session.Commit());

  const Compositor* compositor = db->events()->CompositorOf(window_ev);
  auto stats = compositor->stats();
  std::printf("compositor: fed=%llu completions=%llu live_partials=%zu\n",
              static_cast<unsigned long long>(stats.fed),
              static_cast<unsigned long long>(stats.completions),
              compositor->LivePartialCount());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string base =
      argc > 1
          ? argv[1]
          : (std::filesystem::temp_directory_path() / "reach_stock").string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  Status st = Run(base);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("stock monitor example finished OK\n");
  return 0;
}
