// Telecommunication network management (one of the REACH project's two
// driving application studies, §2): alarm correlation with negation and
// history across transactions.
//
// Rules:
//  * LinkFlap  — if a link goes down and comes back with no technician
//    acknowledgement in between, it's a flap: count it (negation operator).
//  * AlarmStorm — five alarms from any element within a 30s validity
//    window escalate to the operations centre (history operator,
//    cross-transaction, detached rule).
#include <cstdio>
#include <filesystem>

#include "core/reach/reach_db.h"

using namespace reach;

namespace {

Status Run(const std::string& base) {
  VirtualClock clock;
  ReachOptions options;
  options.database.clock = &clock;
  options.events.async_composition = false;
  REACH_ASSIGN_OR_RETURN(std::unique_ptr<ReachDb> db,
                         ReachDb::Open(base, std::move(options)));

  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("Link")
          .Attribute("name", ValueType::kString, Value(""))
          .Attribute("up", ValueType::kBool, Value(true))
          .Attribute("flaps", ValueType::kInt, Value(0))
          .Method("down",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "up", Value(false)));
                    return Value();
                  })
          .Method("restore",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>&) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "up", Value(true)));
                    return Value();
                  })
          .Method("acknowledge",
                  [](Session&, DbObject&,
                     const std::vector<Value>&) -> Result<Value> {
                    return Value();
                  })));
  REACH_RETURN_IF_ERROR(db->RegisterClass(
      ClassBuilder("OpsCentre")
          .Attribute("escalations", ValueType::kInt, Value(0))));

  Session s(db->database());
  REACH_RETURN_IF_ERROR(s.Begin());
  REACH_ASSIGN_OR_RETURN(
      Oid link, s.PersistNew("Link", {{"name", Value("muc-ffm-1")}}));
  REACH_ASSIGN_OR_RETURN(Oid ops, s.PersistNew("OpsCentre", {}));
  REACH_RETURN_IF_ERROR(s.Bind("ops", ops));
  REACH_RETURN_IF_ERROR(s.Commit());

  REACH_ASSIGN_OR_RETURN(EventTypeId down_ev,
                         db->events()->DefineMethodEvent("down_ev", "Link",
                                                         "down"));
  REACH_ASSIGN_OR_RETURN(
      EventTypeId restore_ev,
      db->events()->DefineMethodEvent("restore_ev", "Link", "restore"));
  REACH_ASSIGN_OR_RETURN(
      EventTypeId ack_ev,
      db->events()->DefineMethodEvent("ack_ev", "Link", "acknowledge"));

  // Negation: down; restore with NO acknowledge in between = flap.
  REACH_ASSIGN_OR_RETURN(
      EventTypeId flap_ev,
      db->events()->DefineComposite(
          "link_flap",
          EventExpr::Not(EventExpr::Prim(down_ev), EventExpr::Prim(ack_ev),
                         EventExpr::Prim(restore_ev)),
          CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
          /*validity=*/300LL * 1000000));
  RuleSpec flap;
  flap.name = "LinkFlap";
  flap.event = flap_ev;
  flap.coupling = CouplingMode::kDetached;
  flap.action = [link](Session& se, const EventOccurrence&) -> Status {
    REACH_ASSIGN_OR_RETURN(Value n, se.GetAttr(link, "flaps"));
    std::printf("    [rule] unacknowledged down/restore -> flap #%lld\n",
                static_cast<long long>(n.as_int() + 1));
    return se.SetAttr(link, "flaps", Value(n.as_int() + 1));
  };
  REACH_RETURN_IF_ERROR(db->rules()->DefineRule(std::move(flap)).status());

  // History: 5 down events within 30 seconds = alarm storm.
  REACH_ASSIGN_OR_RETURN(
      EventTypeId storm_ev,
      db->events()->DefineComposite(
          "alarm_storm", EventExpr::History(EventExpr::Prim(down_ev), 5),
          CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
          /*validity=*/30LL * 1000000));
  RuleSpec storm;
  storm.name = "AlarmStorm";
  storm.event = storm_ev;
  storm.coupling = CouplingMode::kDetached;
  storm.action = [](Session& se, const EventOccurrence& occ) -> Status {
    REACH_ASSIGN_OR_RETURN(Oid ops_oid, se.Lookup("ops"));
    REACH_ASSIGN_OR_RETURN(Value n, se.GetAttr(ops_oid, "escalations"));
    std::printf("    [rule] %zu alarms in window -> escalate to NOC\n",
                occ.constituents.size());
    return se.SetAttr(ops_oid, "escalations", Value(n.as_int() + 1));
  };
  REACH_RETURN_IF_ERROR(db->rules()->DefineRule(std::move(storm)).status());

  auto op = [&](const char* method) -> Status {
    REACH_RETURN_IF_ERROR(s.Begin());
    REACH_RETURN_IF_ERROR(s.Invoke(link, method).status());
    REACH_RETURN_IF_ERROR(s.Commit());
    db->Drain();
    clock.Advance(1000000);
    return Status::OK();
  };

  std::printf("-- maintenance: down, acknowledged, restored (no flap) --\n");
  REACH_RETURN_IF_ERROR(op("down"));
  REACH_RETURN_IF_ERROR(op("acknowledge"));
  REACH_RETURN_IF_ERROR(op("restore"));

  std::printf("-- silent outage: down then restore (flap) --\n");
  REACH_RETURN_IF_ERROR(op("down"));
  REACH_RETURN_IF_ERROR(op("restore"));

  std::printf("-- alarm storm: rapid downs --\n");
  for (int i = 0; i < 3; ++i) {
    REACH_RETURN_IF_ERROR(op("down"));
  }
  db->Drain();

  REACH_RETURN_IF_ERROR(s.Begin());
  REACH_ASSIGN_OR_RETURN(Value flaps, s.GetAttr(link, "flaps"));
  REACH_ASSIGN_OR_RETURN(Value esc, s.GetAttr(ops, "escalations"));
  std::printf("\nlink flaps: %lld, NOC escalations: %lld\n",
              static_cast<long long>(flaps.as_int()),
              static_cast<long long>(esc.as_int()));
  REACH_RETURN_IF_ERROR(s.Commit());

  std::printf("global history holds %zu committed events\n",
              db->events()->global_history()->size());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string base =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "reach_network")
                     .string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  Status st = Run(base);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("network monitor example finished OK\n");
  return 0;
}
