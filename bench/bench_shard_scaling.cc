// Shard scaling — the acceptance benchmark for the partitioned buffer pool
// and striped object store (docs/STORAGE.md): N reader threads fetch a
// cached working set through ObjectStore::Read while the shard count is
// swept across {1, 4, 16}. Every read is a buffer pool hit, so the loop
// measures lock-acquisition cost on the storage hot path and nothing else:
// with one shard all readers serialize on a single mutex, with 16 they
// spread over 16. `items_per_second` is reads/sec; `hit_rate` should print
// 1.000 (a lower value means the working set spilled and the numbers are
// garbage — grow kPoolPages).
//
// CI gates the shards:16 / shards:1 wall-clock ratio at 16 threads (and
// 4/1 at 4 threads) via RATIO_PAIRS in scripts/bench_compare.py: absolute
// times track core count and machine speed, but sharding losing ground to
// the single-mutex pool is a property of the code. The bar on multicore
// hardware: >= 2.5x read throughput at 16 threads with 16 shards vs 1.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

constexpr size_t kPoolPages = 256;
constexpr int kObjects = 512;

std::string ScratchBase(const std::string& tag) {
  const char* dir = std::getenv("REACH_BENCH_DIR");
  std::filesystem::path base =
      std::filesystem::path(dir != nullptr ? dir : ".") /
      "bench_shard_scratch";
  std::filesystem::create_directories(base);
  std::string path = (base / tag).string();
  std::filesystem::remove(path + ".db");
  std::filesystem::remove(path + ".wal");
  return path;
}

// Shared across the benchmark's threads; thread 0 owns setup/teardown and
// the google-benchmark start barrier keeps the others out until it's done.
struct SharedDb {
  std::unique_ptr<StorageManager> sm;
  std::vector<Oid> oids;
};
SharedDb g_db;

void BM_ShardedRead(benchmark::State& state) {
  if (state.thread_index() == 0) {
    StorageOptions opts;
    opts.buffer_pool_pages = kPoolPages;
    opts.bufferpool_shards = static_cast<size_t>(state.range(0));
    auto sm = StorageManager::Open(
        ScratchBase("shards" + std::to_string(state.range(0))), opts);
    if (!sm.ok()) std::abort();
    g_db.sm = std::move(*sm);
    TransactionManager tm(g_db.sm.get());
    auto txn = tm.Begin();
    if (!txn.ok()) std::abort();
    std::string payload(200, 's');
    g_db.oids.clear();
    for (int i = 0; i < kObjects; ++i) {
      auto oid = g_db.sm->objects()->Insert(*txn, payload);
      if (!oid.ok()) std::abort();
      g_db.oids.push_back(*oid);
    }
    if (!tm.Commit(*txn).ok()) std::abort();
    // Warm the pool so the timed loop never touches the disk.
    for (const Oid& oid : g_db.oids) {
      if (!g_db.sm->objects()->Read(oid).ok()) std::abort();
    }
  }
  size_t i = static_cast<size_t>(state.thread_index()) * 131;
  for (auto _ : state) {
    const Oid& oid = g_db.oids[i++ % g_db.oids.size()];
    benchmark::DoNotOptimize(g_db.sm->objects()->Read(oid));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    BufferPool* pool = g_db.sm->buffer_pool();
    double accesses =
        static_cast<double>(pool->hit_count() + pool->miss_count());
    state.counters["hit_rate"] = benchmark::Counter(
        accesses > 0 ? static_cast<double>(pool->hit_count()) / accesses
                     : 0.0);
    state.counters["shards"] =
        benchmark::Counter(static_cast<double>(pool->shard_count()));
    g_db.sm.reset();
  }
}

BENCHMARK(BM_ShardedRead)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
