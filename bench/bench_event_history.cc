// Durable event history — cost model for the event-history WAL path
// (docs/EVENTS.md "Durability & recovery"). Two questions:
//
//   1. Signal overhead: what does logging each cross-txn occurrence to the
//      WAL add to the Signal hot path? BM_SignalHistoryOn vs
//      BM_SignalHistoryOff differ only in EventManagerOptions::
//      durable_history; the ratio is gated in scripts/bench_compare.py
//      (event_history_logging_overhead RATIO_PAIR) — absolute times track
//      fsync cost of the machine, the ratio is a property of the code.
//
//   2. Replay cost: how long does recovery take as the surviving history
//      tail grows? BM_ReplayAfterRestart reopens a database whose log holds
//      N unconsumed occurrences; the reopen re-feeds all of them through
//      the compositor (plus the carryover rewrite), so time should scale
//      linearly in N.
//
// Scratch files live under the working directory by default; /tmp is often
// tmpfs where WAL flushes are free and the logging overhead looks smaller
// than it is. Set REACH_BENCH_DIR to aim elsewhere.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/reach/reach_db.h"

namespace reach {
namespace {

std::filesystem::path ScratchDir() {
  const char* dir = std::getenv("REACH_BENCH_DIR");
  std::filesystem::path base =
      std::filesystem::path(dir != nullptr ? dir : ".") / "bench_eh_scratch";
  std::filesystem::create_directories(base);
  return base;
}

std::string FreshBase(const std::string& tag) {
  std::string path = (ScratchDir() / tag).string();
  std::filesystem::remove(path + ".db");
  std::filesystem::remove(path + ".wal");
  return path;
}

struct Db {
  std::unique_ptr<ReachDb> db;
  EventTypeId a = kInvalidEventType;
  EventTypeId b = kInvalidEventType;
};

// Inline composition, one cross-txn composite Seq(A, B). Raising only A
// under kRecent keeps compositor state bounded (the newest initiator
// replaces the previous one), so the Signal benchmarks measure the logging
// path rather than partial-buffer growth. Auto-checkpointing is off so the
// on/off ratio isolates the per-occurrence append.
Db OpenDb(const std::string& base, bool durable_history,
          ConsumptionPolicy policy) {
  ReachOptions options;
  options.events.async_composition = false;
  options.events.durable_history = durable_history;
  options.events.history_checkpoint_interval = 0;
  // The global history is a debug structure that would pin every raised
  // occurrence for the whole run; the bench measures the logging path.
  options.events.maintain_global_history = false;
  auto db = ReachDb::Open(base, options);
  if (!db.ok()) {
    fprintf(stderr, "Open(%s): %s\n", base.c_str(),
            db.status().ToString().c_str());
    std::abort();
  }
  Db out;
  out.db = std::move(*db);
  if (!out.db
           ->RegisterClass(ClassBuilder("Obj").Method(
               "poke",
               [](Session&, DbObject&,
                  const std::vector<Value>&) -> Result<Value> {
                 return Value();
               }))
           .ok()) {
    std::abort();
  }
  auto a = out.db->events()->DefineMethodEvent("A", "Obj", "poke");
  auto b = out.db->events()->DefineMethodEvent("B", "Obj", "poke", false);
  if (!a.ok() || !b.ok()) {
    fprintf(stderr, "DefineMethodEvent: %s / %s\n",
            a.status().ToString().c_str(), b.status().ToString().c_str());
    std::abort();
  }
  out.a = *a;
  out.b = *b;
  auto ab = out.db->events()->DefineComposite(
      "AB", EventExpr::Seq(EventExpr::Prim(out.a), EventExpr::Prim(out.b)),
      CompositeScope::kCrossTxn, policy,
      /*validity_us=*/3600LL * 1000000);
  if (!ab.ok()) {
    fprintf(stderr, "DefineComposite: %s\n", ab.status().ToString().c_str());
    std::abort();
  }
  return out;
}

void SignalLoop(benchmark::State& state, bool durable_history) {
  Db d = OpenDb(FreshBase(durable_history ? "sig_on" : "sig_off"),
                durable_history, ConsumptionPolicy::kRecent);
  for (auto _ : state) {
    if (!d.db->events()->Raise(d.a, kNoTxn).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  if (durable_history) {
    state.counters["logged"] = benchmark::Counter(
        static_cast<double>(d.db->events()->history_logged()));
  }
}

void BM_SignalHistoryOn(benchmark::State& state) { SignalLoop(state, true); }
void BM_SignalHistoryOff(benchmark::State& state) { SignalLoop(state, false); }

BENCHMARK(BM_SignalHistoryOn);
BENCHMARK(BM_SignalHistoryOff);

// Replay time vs history length: seed N unconsumed initiators (kChronicle
// retains every one), flush, close; each iteration reopens the database,
// which restores/replays the whole tail before the composite is live.
void BM_ReplayAfterRestart(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string base = FreshBase("replay_" + std::to_string(n));
  {
    Db d = OpenDb(base, true, ConsumptionPolicy::kChronicle);
    for (int i = 0; i < n; ++i) {
      if (!d.db->events()->Raise(d.a, kNoTxn).ok()) std::abort();
    }
    if (!d.db->events()->FlushEventLog().ok()) std::abort();
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    ReachOptions options;
    options.events.async_composition = false;
    options.events.maintain_global_history = false;
    auto db = ReachDb::Open(base, options);
    if (!db.ok()) std::abort();
    auto ev = (*db)->events()->DefineMethodEvent("A", "Obj", "poke");
    auto ab = (*db)->events()->DefineComposite(
        "AB", EventExpr::Seq(EventExpr::Prim(*ev), EventExpr::Prim(*ev)),
        CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
        /*validity_us=*/3600LL * 1000000);
    if (!ab.ok()) std::abort();
    replayed = (*db)->events()->history_replayed();
    benchmark::DoNotOptimize(replayed);
  }
  if (replayed != static_cast<uint64_t>(n)) std::abort();
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_ReplayAfterRestart)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
