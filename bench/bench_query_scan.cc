// Morsel-parallel extent scans (docs/QUERY.md): one query over a multi-
// hundred-page extent, serial (workers:0) versus parallel at 1/4/8 workers,
// at 1% and 50% predicate selectivity. The predicate `k < N` takes the
// attribute-comparison fast path, so the spread between selectivities
// isolates projection cost from scan cost.
//
// CI gates the workers:8 / workers:0 wall-clock ratio at 50% selectivity
// via RATIO_PAIRS in scripts/bench_compare.py (query_parallel_scan_t8):
// absolute times track machine speed and core count, but parallel execution
// losing ground against the serial path is a property of the code. On a
// many-core machine the ratio sits well below 1; on single-core CI it
// hovers near 1 (the executor still fans out, the OS just time-slices).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "oodb/database.h"
#include "oodb/session.h"
#include "query/query_pm.h"

namespace reach {
namespace {

constexpr int kObjects = 4000;  // ~300B pads: several hundred heap pages

std::string ScratchBase() {
  const char* dir = std::getenv("REACH_BENCH_DIR");
  std::filesystem::path base =
      std::filesystem::path(dir != nullptr ? dir : ".") /
      "bench_query_scan_scratch";
  std::filesystem::create_directories(base);
  std::string path = (base / "db").string();
  std::filesystem::remove(path + ".db");
  std::filesystem::remove(path + ".wal");
  return path;
}

// One database shared by every benchmark in the binary; seeded on first use.
// `k` cycles 0..99 so `k < N` selects exactly N% of the extent.
Database* SharedDb() {
  static Database* db = [] {
    auto opened = Database::Open(ScratchBase());
    if (!opened.ok()) std::abort();
    Database* d = opened->release();
    if (!d->types()
             ->RegisterClass(ClassBuilder("S")
                                 .Attribute("k", ValueType::kInt, Value(0))
                                 .Attribute("pad", ValueType::kString,
                                            Value(""))
                                 .Build())
             .ok()) {
      std::abort();
    }
    Session s(d);
    if (!s.Begin().ok()) std::abort();
    std::string pad(300, 'q');
    for (int i = 0; i < kObjects; ++i) {
      if (!s.PersistNew("S", {{"k", Value(static_cast<int64_t>(i % 100))},
                              {"pad", Value(pad)}})
               .ok()) {
        std::abort();
      }
    }
    if (!s.Commit().ok()) std::abort();
    return d;
  }();
  return db;
}

void BM_QueryParallelScan(benchmark::State& state) {
  Database* db = SharedDb();
  const auto workers = static_cast<size_t>(state.range(0));
  const std::string query =
      "select k from S where k < " + std::to_string(state.range(1));
  QueryOptions options;
  options.parallel = workers > 0 ? 1 : 0;
  options.workers = workers > 0 ? workers : 1;

  QueryPm qpm;
  Session s(db);
  if (!s.Begin().ok()) std::abort();
  size_t rows = 0;
  size_t morsels = 0;
  for (auto _ : state) {
    auto r = qpm.Execute(s, query, options);
    if (!r.ok()) std::abort();
    rows = r->rows.size();
    morsels = r->morsels;
    benchmark::DoNotOptimize(r->rows.data());
  }
  if (!s.Commit().ok()) std::abort();
  state.SetItemsProcessed(state.iterations() * kObjects);
  state.counters["rows"] = benchmark::Counter(static_cast<double>(rows));
  state.counters["morsels"] =
      benchmark::Counter(static_cast<double>(morsels));
}

BENCHMARK(BM_QueryParallelScan)
    ->ArgNames({"workers", "sel"})
    ->Args({0, 1})
    ->Args({0, 50})
    ->Args({1, 1})
    ->Args({1, 50})
    ->Args({4, 1})
    ->Args({4, 50})
    ->Args({8, 1})
    ->Args({8, 50})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
