// Event pipeline scaling — the acceptance benchmark for the lock-free
// dispatch path (docs/EVENTS.md): N detecting threads push occurrences
// through EventManager::Signal while the composition backend and the
// composite fan-out are swept.
//
//   BM_SignalFanout         work-stealing composition, batch_mode off (the
//                           per-occurrence path, kept as the scaling
//                           baseline)
//   BM_SignalFanoutBatched  work-stealing with the batched admission/
//                           dequeue/eval pipeline (the default config)
//   BM_SignalFanoutCentral  central mutex+deque pool (the pre-striping path)
//   BM_SignalFanout/comp:0  pure dispatch: snapshot load + history append,
//                           no composition enqueue at all
//   BM_CompositeLatency*    single-thread Signal->Quiesce round trip for a
//                           conjunction: full completion latency including
//                           the pool handoff, per backend — batch_mode off
//                           (latency mode must not regress)
//
// Each detecting thread signals its own primitive event type inside its own
// transaction, so per-type histories and per-txn compositor instances are
// naturally partitioned — what remains on the shared path is exactly what
// the PR made lock-free (the dispatch snapshot load) or striped (the
// compositor instance maps). Producers apply backpressure when the
// composition queue exceeds kMaxQueueDepth, so the numbers are end-to-end
// pipeline throughput, not enqueue-into-an-unbounded-buffer throughput.
//
// CI gates ratios, not absolutes (RATIO_PAIRS in scripts/bench_compare.py):
//   * threads:8 / threads:1 of BM_SignalFanout/comp:4 — multicore Signal
//     scaling losing ground is a property of the code;
//   * BM_SignalFanout / BM_SignalFanoutCentral at threads:8 — work
//     stealing must not fall behind the central pool it replaced.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/events/event_manager.h"
#include "oodb/database.h"

namespace reach {
namespace {

constexpr int kTypes = 16;           // primitive types, thread t uses t % 16
constexpr uint32_t kHistoryN = 64;   // History(prim, 64): bounded partials
constexpr size_t kMaxQueueDepth = 4096;

std::string ScratchBase(const std::string& tag) {
  const char* dir = std::getenv("REACH_BENCH_DIR");
  std::filesystem::path base =
      std::filesystem::path(dir != nullptr ? dir : ".") /
      "bench_event_scratch";
  std::filesystem::create_directories(base);
  std::string path = (base / tag).string();
  std::filesystem::remove(path + ".db");
  std::filesystem::remove(path + ".wal");
  return path;
}

// Shared across the benchmark's threads; thread 0 owns setup/teardown and
// the google-benchmark start barrier keeps the others out until it's done.
struct SharedEm {
  std::unique_ptr<Database> db;
  std::unique_ptr<EventManager> em;
  std::vector<EventTypeId> types;
};
SharedEm g_em;

void SetupPipeline(CompositionMode mode, int composites_per_type,
                   bool batch, const std::string& tag) {
  auto db = Database::Open(ScratchBase(tag), {});
  if (!db.ok()) std::abort();
  g_em.db = std::move(*db);
  EventManagerOptions opts;
  opts.composition_mode = mode;
  opts.composition_threads = 2;
  opts.batch_mode = batch;
  // The producers never commit, so don't buffer per-txn history forever.
  opts.maintain_global_history = false;
  g_em.em = std::make_unique<EventManager>(g_em.db.get(), opts);
  g_em.types.clear();
  for (int t = 0; t < kTypes; ++t) {
    auto id = g_em.em->DefineMethodEvent("prim" + std::to_string(t), "Bench",
                                         "m" + std::to_string(t));
    if (!id.ok()) std::abort();
    g_em.types.push_back(*id);
    // Single-txn History composites: each thread's transaction gets its own
    // automaton instance, completing (and recycling buffers) every kHistoryN
    // occurrences.
    for (int c = 0; c < composites_per_type; ++c) {
      auto comp = g_em.em->DefineComposite(
          "comp" + std::to_string(t) + "_" + std::to_string(c),
          EventExpr::History(EventExpr::Prim(*id), kHistoryN),
          CompositeScope::kSingleTxn);
      if (!comp.ok()) std::abort();
    }
  }
}

void TeardownPipeline(benchmark::State& state) {
  g_em.em->Quiesce();
  state.counters["signaled"] =
      benchmark::Counter(static_cast<double>(g_em.em->signaled_count()));
  state.counters["composed"] =
      benchmark::Counter(static_cast<double>(g_em.em->composite_count()));
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(g_em.em->composition_steal_count()));
  g_em.em.reset();
  g_em.db.reset();
}

void FanoutBody(benchmark::State& state, CompositionMode mode, bool batch,
                const std::string& tag) {
  const int comp = static_cast<int>(state.range(0));
  if (state.thread_index() == 0) {
    SetupPipeline(mode, comp, batch, tag + std::to_string(comp));
  }
  const TxnId txn = static_cast<TxnId>(state.thread_index()) + 1;
  EventTypeId type = 0;
  size_t n = 0;
  for (auto _ : state) {
    if (n == 0) {
      // Read shared setup state only after the start barrier: thread 0
      // populates g_em.types before the loop, and non-zero threads reaching
      // the modulo earlier raced it (types.size() == 0 is a SIGFPE).
      type = g_em.types[static_cast<size_t>(state.thread_index()) %
                        g_em.types.size()];
    }
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = type;
    occ->txn = txn;
    occ->timestamp = 1;  // explicit: keep the clock out of the loop
    g_em.em->Signal(std::move(occ));
    if ((++n & 255) == 0) {
      while (g_em.em->composition_queue_depth() > kMaxQueueDepth) {
        std::this_thread::yield();
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) TeardownPipeline(state);
}

void BM_SignalFanout(benchmark::State& state) {
  FanoutBody(state, CompositionMode::kWorkStealing, /*batch=*/false, "ws");
}
void BM_SignalFanoutBatched(benchmark::State& state) {
  FanoutBody(state, CompositionMode::kWorkStealing, /*batch=*/true, "wsb");
}
void BM_SignalFanoutCentral(benchmark::State& state) {
  FanoutBody(state, CompositionMode::kCentralPool, /*batch=*/false,
             "central");
}

BENCHMARK(BM_SignalFanout)
    ->ArgName("comp")
    ->Arg(0)
    ->Arg(4)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_SignalFanoutBatched)
    ->ArgName("comp")
    ->Arg(4)
    ->Threads(1)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_SignalFanoutCentral)
    ->ArgName("comp")
    ->Arg(4)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kNanosecond);

// Completion latency: And(A, B) per iteration — Signal both legs, then
// Quiesce so the composite has provably been raised. Measures the full
// signal -> enqueue -> compose -> completion-signal round trip.
void LatencyBody(benchmark::State& state, CompositionMode mode, bool async,
                 const std::string& tag) {
  auto db = Database::Open(ScratchBase("lat_" + tag), {});
  if (!db.ok()) std::abort();
  EventManagerOptions opts;
  opts.async_composition = async;
  opts.composition_mode = mode;
  opts.composition_threads = 2;
  opts.batch_mode = false;  // latency mode: per-occurrence dispatch
  opts.maintain_global_history = false;
  EventManager em((*db).get(), opts);
  auto a = em.DefineMethodEvent("lat_a", "Bench", "a");
  auto b = em.DefineMethodEvent("lat_b", "Bench", "b");
  auto comp = em.DefineComposite(
      "lat_and", EventExpr::And(EventExpr::Prim(*a), EventExpr::Prim(*b)),
      CompositeScope::kSingleTxn);
  if (!comp.ok()) std::abort();
  for (auto _ : state) {
    for (EventTypeId leg : {*a, *b}) {
      auto occ = std::make_shared<EventOccurrence>();
      occ->type = leg;
      occ->txn = 1;
      occ->timestamp = 1;
      em.Signal(std::move(occ));
    }
    em.Quiesce();
  }
  state.counters["composed"] =
      benchmark::Counter(static_cast<double>(em.composite_count()));
}

void BM_CompositeLatencyInline(benchmark::State& state) {
  LatencyBody(state, CompositionMode::kInline, false, "inline");
}
void BM_CompositeLatencyCentral(benchmark::State& state) {
  LatencyBody(state, CompositionMode::kCentralPool, true, "central");
}
void BM_CompositeLatencyWS(benchmark::State& state) {
  LatencyBody(state, CompositionMode::kWorkStealing, true, "ws");
}

BENCHMARK(BM_CompositeLatencyInline)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompositeLatencyCentral)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompositeLatencyWS)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
