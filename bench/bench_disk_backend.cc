// Disk backend comparison — the acceptance benchmark for the pluggable
// batched-I/O layer (docs/STORAGE.md "Async disk backend"). Three workloads,
// each swept across backend={posix,async,uring} (arg 0/1/2; uring silently
// resolves to async where io_uring is unavailable, keeping benchmark names
// stable for the baseline):
//
//  * BM_ColdScan — ObjectStore::ScanAll with a pool far smaller than the
//    data file, so every scan re-reads the pages through the batched
//    readahead path. posix = one pread per page; async = pooled parallel
//    preads; uring = one ring doorbell per 32-page window.
//  * BM_Checkpoint — dirty every data page, then BufferPool::FlushAll.
//    posix = one pwrite per page; async/uring = contiguous runs coalesced
//    into pwritev/IORING_OP_WRITEV submissions.
//  * BM_WalAppend — append + group-commit flush of one physical record.
//    uring fuses the write+fsync pair into one linked submission.
//
// CI gates the async/posix and uring/posix cold-scan and checkpoint ratios
// via RATIO_PAIRS in scripts/bench_compare.py: absolute times track machine
// speed, but the batched backends losing their edge over the synchronous
// loop is a property of the code.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk_backend.h"
#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

constexpr int kObjects = 1024;       // ~4 objects/page -> ~256 data pages
constexpr size_t kScanPoolPages = 48;  // far below the data page count
constexpr size_t kCheckpointPoolPages = 512;  // holds every data page

std::string ScratchBase(const std::string& tag) {
  const char* dir = std::getenv("REACH_BENCH_DIR");
  std::filesystem::path base =
      std::filesystem::path(dir != nullptr ? dir : ".") /
      "bench_disk_backend_scratch";
  std::filesystem::create_directories(base);
  std::string path = (base / tag).string();
  std::filesystem::remove(path + ".db");
  std::filesystem::remove(path + ".wal");
  return path;
}

DiskBackendKind KindForArg(int64_t arg) {
  switch (arg) {
    case 1:
      return DiskBackendKind::kAsync;
    case 2:
      return DiskBackendKind::kUring;
    default:
      return DiskBackendKind::kPosix;
  }
}

std::unique_ptr<StorageManager> OpenSeeded(const std::string& tag,
                                           DiskBackendKind kind,
                                           size_t pool_pages,
                                           std::vector<Oid>* oids) {
  StorageOptions opts;
  opts.buffer_pool_pages = pool_pages;
  opts.disk_backend = kind;
  auto sm = StorageManager::Open(ScratchBase(tag), opts);
  if (!sm.ok()) std::abort();
  TransactionManager tm(sm->get());
  auto txn = tm.Begin();
  if (!txn.ok()) std::abort();
  std::string payload(900, 'd');  // ~4 cells per 4K page
  oids->clear();
  for (int i = 0; i < kObjects; ++i) {
    auto oid = (*sm)->objects()->Insert(*txn, payload);
    if (!oid.ok()) std::abort();
    oids->push_back(*oid);
  }
  if (!tm.Commit(*txn).ok()) std::abort();
  return std::move(*sm);
}

void BM_ColdScan(benchmark::State& state) {
  std::vector<Oid> oids;
  auto sm = OpenSeeded("coldscan" + std::to_string(state.range(0)),
                       KindForArg(state.range(0)), kScanPoolPages, &oids);
  // Flush so the timed scans read clean pages (no evict write-back noise).
  if (!sm->Checkpoint().ok()) std::abort();
  for (auto _ : state) {
    auto scanned = sm->objects()->ScanAll();
    if (!scanned.ok()) std::abort();
    benchmark::DoNotOptimize(scanned->size());
  }
  state.SetItemsProcessed(state.iterations() * kObjects);
  state.counters["pages"] = benchmark::Counter(
      static_cast<double>(sm->objects()->data_page_count()));
}

void BM_Checkpoint(benchmark::State& state) {
  std::vector<Oid> oids;
  auto sm = OpenSeeded("checkpoint" + std::to_string(state.range(0)),
                       KindForArg(state.range(0)), kCheckpointPoolPages,
                       &oids);
  TransactionManager tm(sm.get());
  std::string payload(900, 'e');
  for (auto _ : state) {
    state.PauseTiming();
    // Dirty every data page; the pool holds them all, so FlushAll sees the
    // full set and the backends' coalescing has something to merge.
    auto txn = tm.Begin();
    if (!txn.ok()) std::abort();
    for (const Oid& oid : oids) {
      if (!sm->objects()->Update(*txn, oid, payload).ok()) std::abort();
    }
    if (!tm.Commit(*txn).ok()) std::abort();
    state.ResumeTiming();
    if (!sm->buffer_pool()->FlushAll().ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * kObjects);
}

void BM_WalAppend(benchmark::State& state) {
  std::vector<Oid> oids;
  auto sm = OpenSeeded("walappend" + std::to_string(state.range(0)),
                       KindForArg(state.range(0)), kCheckpointPoolPages,
                       &oids);
  TransactionManager tm(sm.get());
  std::string payload(256, 'w');
  for (auto _ : state) {
    auto txn = tm.Begin();
    if (!txn.ok()) std::abort();
    if (!sm->objects()->Update(*txn, oids[0], payload).ok()) std::abort();
    // Commit forces the log: append + write + fsync (fused on uring).
    if (!tm.Commit(*txn).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ColdScan)
    ->ArgName("backend")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_Checkpoint)
    ->ArgName("backend")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_WalAppend)
    ->ArgName("backend")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
