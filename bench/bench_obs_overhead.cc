// Cost of compiled-in metrics when observability is disabled — the number
// that justifies leaving counters, histograms, and span stamps in every hot
// path (sentries, WAL, commit, rule firing). The disabled gate is one
// relaxed atomic load per instrument; this bench pins that claim against a
// baseline function of identical shape with no instrument, and also
// measures the enabled cost (relaxed fetch_adds into a sharded histogram)
// so the price of turning REACH_METRICS on is visible too.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace reach {
namespace {

// noinline keeps both functions honest: without it the optimizer can hoist
// the (constant-false) gate out of the benchmark loop entirely and the
// comparison measures nothing.
__attribute__((noinline)) uint64_t PlainOp(uint64_t* acc) {
  *acc += 1;
  return *acc;
}

__attribute__((noinline)) uint64_t CountedOp(uint64_t* acc,
                                             obs::Counter* counter) {
  counter->Inc();
  *acc += 1;
  return *acc;
}

__attribute__((noinline)) uint64_t TimedOp(uint64_t* acc,
                                           obs::Histogram* hist) {
  // The span-stamp idiom: clock read and record only when enabled.
  uint64_t start = obs::NowNanosIfEnabled();
  *acc += 1;
  if (start != 0) hist->RecordAlways(obs::NowNanos() - start);
  return *acc;
}

obs::Counter* BenchCounter() {
  return obs::MetricsRegistry::Instance().counter("bench.obs.counter");
}

obs::Histogram* BenchHistogram() {
  return obs::MetricsRegistry::Instance().histogram("bench.obs.hist");
}

void BM_NoInstrument(benchmark::State& state) {
  obs::MetricsRegistry::Instance().SetEnabled(false);
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlainOp(&acc));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NoInstrument);

void BM_CounterDisabled(benchmark::State& state) {
  // The acceptance bar: delta vs BM_NoInstrument is one relaxed load.
  obs::MetricsRegistry::Instance().SetEnabled(false);
  obs::Counter* counter = BenchCounter();
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountedOp(&acc, counter));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
  obs::MetricsRegistry::Instance().SetEnabled(true);
  obs::Counter* counter = BenchCounter();
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountedOp(&acc, counter));
  }
  benchmark::DoNotOptimize(acc);
  obs::MetricsRegistry::Instance().SetEnabled(false);
}
BENCHMARK(BM_CounterEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  // Disabled span stamp: one relaxed load, no clock read.
  obs::MetricsRegistry::Instance().SetEnabled(false);
  obs::Histogram* hist = BenchHistogram();
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimedOp(&acc, hist));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  // Enabled span: two steady_clock reads plus a histogram record — what a
  // pipeline stage costs while REACH_METRICS=on.
  obs::MetricsRegistry::Instance().SetEnabled(true);
  obs::Histogram* hist = BenchHistogram();
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimedOp(&acc, hist));
  }
  benchmark::DoNotOptimize(acc);
  obs::MetricsRegistry::Instance().SetEnabled(false);
}
BENCHMARK(BM_SpanEnabled);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  // Raw record cost without the clock reads (values fed, not timed).
  obs::MetricsRegistry::Instance().SetEnabled(true);
  obs::Histogram* hist = BenchHistogram();
  uint64_t v = 0;
  for (auto _ : state) {
    hist->RecordAlways(v++);
    benchmark::DoNotOptimize(v);
  }
  obs::MetricsRegistry::Instance().SetEnabled(false);
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_HistogramRecordConcurrent(benchmark::State& state) {
  // Shard contention check: concurrent recorders should scale near-linearly
  // thanks to the per-thread shards.
  if (state.thread_index() == 0) {
    obs::MetricsRegistry::Instance().SetEnabled(true);
  }
  obs::Histogram* hist = BenchHistogram();
  uint64_t v = state.thread_index();
  for (auto _ : state) {
    hist->RecordAlways(v++);
    benchmark::DoNotOptimize(v);
  }
  if (state.thread_index() == 0) {
    obs::MetricsRegistry::Instance().SetEnabled(false);
  }
}
BENCHMARK(BM_HistogramRecordConcurrent)->Threads(4);

void BM_SnapshotJson(benchmark::State& state) {
  // Snapshot cost scales with registered metrics, not with recordings; it
  // runs off the hot path (dump hooks, tests) but should stay cheap.
  obs::MetricsRegistry::Instance().SetEnabled(true);
  obs::Histogram* hist = BenchHistogram();
  for (uint64_t i = 0; i < 1000; ++i) hist->RecordAlways(i);
  for (auto _ : state) {
    std::string json = obs::MetricsRegistry::Instance().SnapshotJson();
    benchmark::DoNotOptimize(json);
  }
  obs::MetricsRegistry::Instance().SetEnabled(false);
}
BENCHMARK(BM_SnapshotJson);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
