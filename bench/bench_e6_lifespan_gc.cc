// E6 — event life-span management (§3.3): without a defined life-span,
// semi-composed events accumulate without bound; with per-transaction
// scoping (discard at EOT) or validity intervals (expire), the live
// population stays bounded. This bench prints the live-partial population
// under three regimes for the same never-completing event stream.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/events/compositor.h"
#include "core/events/event_registry.h"

namespace reach {
namespace {

struct GcSetup {
  EventRegistry registry;
  EventTypeId initiator, terminator;
  std::unique_ptr<Compositor> compositor;

  GcSetup(CompositeScope scope, Timestamp validity) {
    initiator = *registry.RegisterMethodEvent("I", "C", "i");
    terminator = *registry.RegisterMethodEvent("T", "C", "t");
    auto id = registry.RegisterComposite(
        "X", EventExpr::Seq(EventExpr::Prim(initiator),
                            EventExpr::Prim(terminator)),
        scope, ConsumptionPolicy::kChronicle, validity);
    if (!id.ok()) std::abort();
    compositor = std::make_unique<Compositor>(registry.Find(*id));
  }
};

// Stream of initiators that never terminate: the §3.3 worst case.
void BM_NoGc_UnboundedGrowth(benchmark::State& state) {
  // Cross-txn scope with an effectively-infinite validity interval: the
  // "illegal" configuration §3.3 exists to rule out.
  GcSetup setup(CompositeScope::kCrossTxn, /*validity=*/1LL << 60);
  uint64_t seq = 0;
  std::vector<EventOccurrencePtr> out;
  for (auto _ : state) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = setup.initiator;
    occ->sequence = ++seq;
    occ->timestamp = static_cast<Timestamp>(seq);
    occ->txn = 1 + (seq % 64);
    setup.compositor->Feed(occ, &out);
  }
  state.counters["live_partials_at_end"] =
      static_cast<double>(setup.compositor->LivePartialCount());
}
BENCHMARK(BM_NoGc_UnboundedGrowth)->Iterations(100000);

void BM_TxnScopeGc_BoundedByActiveTxns(benchmark::State& state) {
  GcSetup setup(CompositeScope::kSingleTxn, 0);
  uint64_t seq = 0;
  std::vector<EventOccurrencePtr> out;
  for (auto _ : state) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = setup.initiator;
    occ->sequence = ++seq;
    occ->timestamp = static_cast<Timestamp>(seq);
    TxnId txn = 1 + (seq % 64);
    occ->txn = txn;
    setup.compositor->Feed(occ, &out);
    // A transaction ends every 16 events (discarding its partials).
    if (seq % 16 == 0) setup.compositor->OnTxnEnd(1 + (seq / 16) % 64);
  }
  state.counters["live_partials_at_end"] =
      static_cast<double>(setup.compositor->LivePartialCount());
  state.counters["discarded_at_eot"] =
      static_cast<double>(setup.compositor->stats().discarded_at_eot);
}
BENCHMARK(BM_TxnScopeGc_BoundedByActiveTxns)->Iterations(100000);

void BM_ValidityIntervalGc_BoundedByWindow(benchmark::State& state) {
  GcSetup setup(CompositeScope::kCrossTxn, /*validity=*/1000);
  uint64_t seq = 0;
  std::vector<EventOccurrencePtr> out;
  for (auto _ : state) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = setup.initiator;
    occ->sequence = ++seq;
    occ->timestamp = static_cast<Timestamp>(seq * 10);  // 10us apart
    occ->txn = 1 + (seq % 64);
    setup.compositor->Feed(occ, &out);
  }
  state.counters["live_partials_at_end"] =
      static_cast<double>(setup.compositor->LivePartialCount());
  state.counters["expired_partials"] =
      static_cast<double>(setup.compositor->stats().expired_partials);
}
BENCHMARK(BM_ValidityIntervalGc_BoundedByWindow)->Iterations(100000);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
