// E4 — §6.3's design decision: many small compositors, executable by
// parallel threads, instead of one large monolithic event graph. We
// compare throughput of k composite event types processed (a) behind a
// single global lock in one thread (the monolithic organization), (b) as
// independent compositors on one thread, and (c) as independent
// compositors fanned out over a thread pool. Also reports semi-composed
// event GC cost at EOT.
#include <benchmark/benchmark.h>

#include <mutex>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/events/compositor.h"
#include "core/events/event_registry.h"

namespace reach {
namespace {

struct Setup {
  EventRegistry registry;
  std::vector<EventTypeId> primitives;
  std::vector<std::unique_ptr<Compositor>> compositors;
  std::vector<EventOccurrencePtr> stream;

  explicit Setup(int k, int stream_len = 4096) {
    for (int i = 0; i < 8; ++i) {
      primitives.push_back(*registry.RegisterMethodEvent(
          "P" + std::to_string(i), "C", "m" + std::to_string(i)));
    }
    for (int i = 0; i < k; ++i) {
      // Each composite is a sequence over a pseudo-random pair.
      EventTypeId a = primitives[i % primitives.size()];
      EventTypeId b = primitives[(i + 3) % primitives.size()];
      auto id = registry.RegisterComposite(
          "X" + std::to_string(i),
          EventExpr::Seq(EventExpr::Prim(a), EventExpr::Prim(b)),
          CompositeScope::kSingleTxn, ConsumptionPolicy::kChronicle);
      if (!id.ok()) std::abort();
      compositors.push_back(
          std::make_unique<Compositor>(registry.Find(*id)));
    }
    Random rng(42);
    for (int i = 0; i < stream_len; ++i) {
      auto occ = std::make_shared<EventOccurrence>();
      occ->type = primitives[rng.Uniform(primitives.size())];
      occ->sequence = static_cast<uint64_t>(i + 1);
      occ->timestamp = (i + 1) * 10;
      occ->txn = 1 + rng.Uniform(4);  // four concurrent transactions
      stream.push_back(std::move(occ));
    }
  }
};

void BM_MonolithicSingleGraph(benchmark::State& state) {
  Setup setup(static_cast<int>(state.range(0)));
  std::mutex global_graph_lock;  // the monolithic manager serializes on one
  std::vector<EventOccurrencePtr> out;
  for (auto _ : state) {
    for (const auto& occ : setup.stream) {
      std::lock_guard<std::mutex> lock(global_graph_lock);
      for (auto& c : setup.compositors) {
        c->Feed(occ, &out);
      }
      out.clear();
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.stream.size()));
  state.counters["composite_types"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MonolithicSingleGraph)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_SmallCompositorsSequential(benchmark::State& state) {
  Setup setup(static_cast<int>(state.range(0)));
  std::vector<EventOccurrencePtr> out;
  for (auto _ : state) {
    for (const auto& occ : setup.stream) {
      for (auto& c : setup.compositors) {
        c->Feed(occ, &out);
      }
      out.clear();
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.stream.size()));
  state.counters["composite_types"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SmallCompositorsSequential)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_SmallCompositorsParallel(benchmark::State& state) {
  Setup setup(static_cast<int>(state.range(0)));
  ThreadPool pool(4);
  for (auto _ : state) {
    for (const auto& occ : setup.stream) {
      for (auto& c : setup.compositors) {
        Compositor* raw = c.get();
        pool.Submit([raw, occ] {
          std::vector<EventOccurrencePtr> out;
          raw->Feed(occ, &out);
        });
      }
    }
    pool.WaitIdle();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(setup.stream.size()));
  state.counters["composite_types"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SmallCompositorsParallel)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_EotGarbageCollection(benchmark::State& state) {
  // §6.3: "when the life-span of a semi-composed event elapses, the whole
  // composition graph instance is simply removed" — measure that removal.
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Setup setup(k, /*stream_len=*/1024);
    std::vector<EventOccurrencePtr> out;
    for (const auto& occ : setup.stream) {
      for (auto& c : setup.compositors) c->Feed(occ, &out);
    }
    state.ResumeTiming();
    for (TxnId txn = 1; txn <= 4; ++txn) {
      for (auto& c : setup.compositors) c->OnTxnEnd(txn);
    }
  }
  state.counters["composite_types"] = static_cast<double>(k);
}
BENCHMARK(BM_EotGarbageCollection)->Arg(8)->Arg(64);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
