// E7 — substrate sanity: throughput of the EXODUS-role storage manager and
// the transaction manager underneath REACH (object create / read / update,
// durable commit, nested subtransaction overhead, recovery replay rate).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/random.h"
#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

std::string FreshBase(const std::string& tag) {
  std::string base =
      (std::filesystem::temp_directory_path() / ("reach_e7_" + tag)).string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  return base;
}

void BM_ObjectInsert(benchmark::State& state) {
  auto sm = StorageManager::Open(FreshBase("insert"));
  if (!sm.ok()) std::abort();
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  TxnId txn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*sm)->objects()->Insert(txn, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
// 32 KiB exercises the large-object segment chains; iteration-capped so
// the scratch file stays small.
BENCHMARK(BM_ObjectInsert)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_ObjectInsert)->Arg(32768)->Iterations(2000);

void BM_ObjectRead(benchmark::State& state) {
  auto sm = StorageManager::Open(FreshBase("read"));
  if (!sm.ok()) std::abort();
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  std::vector<Oid> oids;
  for (int i = 0; i < 1024; ++i) {
    oids.push_back(*(*sm)->objects()->Insert(1, payload));
  }
  Random rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*sm)->objects()->Read(oids[rng.Uniform(oids.size())]));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ObjectRead)->Arg(64)->Arg(512)->Arg(4096);

void BM_ObjectUpdateInPlace(benchmark::State& state) {
  auto sm = StorageManager::Open(FreshBase("update"));
  if (!sm.ok()) std::abort();
  std::string payload(256, 'x');
  auto oid = *(*sm)->objects()->Insert(1, payload);
  for (auto _ : state) {
    payload[0] = static_cast<char>('a' + (state.iterations() % 26));
    if (!(*sm)->objects()->Update(1, oid, payload).ok()) std::abort();
  }
}
BENCHMARK(BM_ObjectUpdateInPlace);

void BM_DurableCommit(benchmark::State& state) {
  // Full transaction with one insert and an fsync'd commit record — the
  // durability floor for every REACH transaction.
  auto sm = StorageManager::Open(FreshBase("commit"));
  if (!sm.ok()) std::abort();
  TransactionManager tm(sm->get());
  std::string payload(128, 'p');
  for (auto _ : state) {
    auto txn = tm.Begin();
    if (!txn.ok()) std::abort();
    benchmark::DoNotOptimize((*sm)->objects()->Insert(*txn, payload));
    if (!tm.Commit(*txn).ok()) std::abort();
  }
}
BENCHMARK(BM_DurableCommit)->Unit(benchmark::kMicrosecond);

void BM_SubtransactionOverhead(benchmark::State& state) {
  // Begin+commit of an empty nested subtransaction: the setup cost that
  // parallel rule execution must amortize (E1's crossover).
  auto sm = StorageManager::Open(FreshBase("subtxn"));
  if (!sm.ok()) std::abort();
  TransactionManager tm(sm->get());
  auto root = tm.Begin();
  if (!root.ok()) std::abort();
  for (auto _ : state) {
    auto sub = tm.Begin(*root);
    if (!sub.ok()) std::abort();
    if (!tm.Commit(*sub).ok()) std::abort();
  }
  (void)tm.Abort(*root);
}
BENCHMARK(BM_SubtransactionOverhead);

void BM_AbortRollback(benchmark::State& state) {
  auto sm = StorageManager::Open(FreshBase("abort"));
  if (!sm.ok()) std::abort();
  TransactionManager tm(sm->get());
  std::string payload(128, 'p');
  int n_ops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto txn = tm.Begin();
    if (!txn.ok()) std::abort();
    for (int i = 0; i < n_ops; ++i) {
      benchmark::DoNotOptimize((*sm)->objects()->Insert(*txn, payload));
    }
    if (!tm.Abort(*txn).ok()) std::abort();
  }
  state.counters["ops_rolled_back"] = n_ops;
}
BENCHMARK(BM_AbortRollback)->Arg(1)->Arg(16)->Arg(128);

void BM_RecoveryReplay(benchmark::State& state) {
  // Replay rate: how fast Open() recovers a log of committed inserts.
  int n_records = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string base = FreshBase("recover");
    {
      auto sm = StorageManager::Open(base);
      if (!sm.ok()) std::abort();
      std::string payload(128, 'r');
      for (int i = 0; i < n_records; ++i) {
        TxnId txn = static_cast<TxnId>(i + 1);
        if (!(*sm)->LogBegin(txn).ok()) std::abort();
        benchmark::DoNotOptimize((*sm)->objects()->Insert(txn, payload));
        auto commit_lsn = (*sm)->LogCommit(txn);
        if (!commit_lsn.ok()) std::abort();
        if (!(*sm)->wal()->WaitDurable(*commit_lsn).ok()) std::abort();
      }
      // Crash: no checkpoint.
    }
    state.ResumeTiming();
    auto sm = StorageManager::Open(base);
    if (!sm.ok()) std::abort();
    benchmark::DoNotOptimize((*sm)->recovery_stats().records_redone);
  }
  state.counters["wal_records"] = n_records;
}
// Setup per iteration writes the whole log (with per-commit fsyncs), so
// cap the iteration count.
BENCHMARK(BM_RecoveryReplay)
    ->Arg(100)->Arg(1000)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
