// E1 — the measurement §6.4 says the nested-transaction work enables:
// serial ring-sequence vs parallel sibling-subtransaction rule execution,
// for rule-set sizes 1..16 and action costs 0..1000us. Expected shape:
// serial time grows linearly with (rules x cost); parallel flattens once
// cost dominates the subtransaction setup overhead, and loses slightly
// when actions are nearly free.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "core/reach/reach_db.h"

namespace reach {
namespace {

// Rule-action cost is modeled as *latency* (sleep), not CPU burn: the
// paper's target actions — operator notification, device commands,
// contingency invocation — wait on external systems, and latency-bound
// actions are what parallel subtransactions overlap even on few cores.
// (CPU-bound actions additionally need real processors; the paper's
// platform was multiprocessor Solaris.)
void ActionCostMicros(int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

std::unique_ptr<ReachDb> Open(bool parallel, int n_rules, int64_t cost_us,
                              const std::string& tag) {
  std::string base =
      (std::filesystem::temp_directory_path() / ("reach_e1_" + tag)).string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  ReachOptions options;
  options.rules.multi_rule_execution =
      parallel ? RuleEngineOptions::Execution::kParallelSubtransactions
               : RuleEngineOptions::Execution::kSerialRingSequence;
  options.rules.parallel_rule_threads = 8;
  auto db = ReachDb::Open(base, std::move(options));
  if (!db.ok()) std::abort();
  Status st = (*db)->RegisterClass(
      ClassBuilder("Plant")
          .Attribute("v", ValueType::kInt, Value(0))
          .Method("tick", [](Session&, DbObject&,
                             const std::vector<Value>&) -> Result<Value> {
            return Value();
          }));
  if (!st.ok()) std::abort();
  auto ev = (*db)->events()->DefineMethodEvent("tick_ev", "Plant", "tick");
  for (int i = 0; i < n_rules; ++i) {
    RuleSpec spec;
    spec.name = "rule" + std::to_string(i);
    spec.event = *ev;
    spec.coupling = CouplingMode::kImmediate;
    spec.action = [cost_us](Session&, const EventOccurrence&) -> Status {
      ActionCostMicros(cost_us);
      return Status::OK();
    };
    if (!(*db)->rules()->DefineRule(std::move(spec)).ok()) std::abort();
  }
  return std::move(*db);
}

void RunBody(benchmark::State& state, bool parallel) {
  int n_rules = static_cast<int>(state.range(0));
  int64_t cost_us = state.range(1);
  auto db = Open(parallel, n_rules, cost_us,
                 (parallel ? "par_" : "ser_") + std::to_string(n_rules) +
                     "_" + std::to_string(cost_us));
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  auto oid = s.PersistNew("Plant", {});
  if (!oid.ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(*oid, "tick"));
  }
  (void)s.Abort();
  state.counters["rules"] = n_rules;
  state.counters["action_us"] = static_cast<double>(cost_us);
}

void BM_SerialRingSequence(benchmark::State& state) { RunBody(state, false); }
void BM_ParallelSubtransactions(benchmark::State& state) {
  RunBody(state, true);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int rules : {1, 4, 16}) {
    for (int64_t cost : {0, 100, 1000}) {
      b->Args({rules, cost});
    }
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_SerialRingSequence)->Apply(Args);
BENCHMARK(BM_ParallelSubtransactions)->Apply(Args);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
