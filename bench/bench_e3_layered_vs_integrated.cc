// E3 — the §4 experience report, quantified: the same monitoring rule set
// on (a) the integrated REACH architecture (sentry detection, per-type
// ECA-managers) and (b) the layered architecture over a closed OODBMS
// (explicit announcements journaled into the database, linear rule
// matching). Expected shape: integrated wins by a large factor, and the
// layered gap widens with the number of registered rules.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "baseline/layered_adbms.h"
#include "core/reach/reach_db.h"

namespace reach {
namespace {

constexpr int kClasses = 8;  // rules registered for 8 classes; 1 matches

void BM_IntegratedDetectionAndFiring(benchmark::State& state) {
  int n_rules = static_cast<int>(state.range(0));
  std::string base = (std::filesystem::temp_directory_path() /
                      ("reach_e3_int_" + std::to_string(n_rules)))
                         .string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  auto db_or = ReachDb::Open(base);
  if (!db_or.ok()) std::abort();
  auto& db = *db_or;
  Status st = db->RegisterClass(
      ClassBuilder("Sensor")
          .Attribute("value", ValueType::kInt, Value(0))
          .Method("report",
                  [](Session& s, DbObject& self,
                     const std::vector<Value>& args) -> Result<Value> {
                    REACH_RETURN_IF_ERROR(
                        s.SetAttr(self.oid(), "value", args[0]));
                    return Value();
                  }));
  if (!st.ok()) std::abort();
  // n_rules rules spread over kClasses distinct event types; only the
  // Sensor::report rules can fire. The ECA-manager indexes by type, so the
  // non-matching rules are free.
  auto ev = db->events()->DefineMethodEvent("report_ev", "Sensor", "report");
  std::vector<EventTypeId> other_events;
  for (int c = 1; c < kClasses; ++c) {
    auto other = db->events()->DefineMethodEvent(
        "ev_cls" + std::to_string(c), "Class" + std::to_string(c), "m");
    if (!other.ok()) std::abort();
    other_events.push_back(*other);
  }
  for (int i = 0; i < n_rules; ++i) {
    EventTypeId event =
        (i % kClasses == 0) ? *ev : other_events[i % kClasses - 1];
    RuleSpec spec;
    spec.name = "r" + std::to_string(i);
    spec.event = event;
    spec.coupling = CouplingMode::kImmediate;
    spec.condition = [](Session&, const EventOccurrence& occ) -> Result<bool> {
      return !occ.params.empty() && occ.params[0].as_int() > 50;
    };
    spec.action = [](Session&, const EventOccurrence&) {
      return Status::OK();
    };
    if (!db->rules()->DefineRule(std::move(spec)).ok()) std::abort();
  }

  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  auto oid = s.PersistNew("Sensor", {});
  int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(*oid, "report", {Value(++v % 100)}));
  }
  (void)s.Abort();
  state.counters["rules"] = n_rules;
}
BENCHMARK(BM_IntegratedDetectionAndFiring)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_LayeredAnnounceAndFiring(benchmark::State& state) {
  int n_rules = static_cast<int>(state.range(0));
  std::string base = (std::filesystem::temp_directory_path() /
                      ("reach_e3_lay_" + std::to_string(n_rules)))
                         .string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  auto db_or = ClosedDb::Open(base);
  if (!db_or.ok()) std::abort();
  auto& db = *db_or;
  ClassBuilder sensor("Sensor");
  sensor.Attribute("value", ValueType::kInt, Value(0));
  sensor.Method("report",
                [](Session& s, DbObject& self,
                   const std::vector<Value>& args) -> Result<Value> {
                  REACH_RETURN_IF_ERROR(
                      s.SetAttr(self.oid(), "value", args[0]));
                  return Value();
                });
  if (!db->RegisterClass(sensor).ok()) std::abort();
  LayeredAdbms layer(db.get());
  for (int i = 0; i < n_rules; ++i) {
    std::string cls = i % kClasses == 0
                          ? "Sensor"
                          : "Class" + std::to_string(i % kClasses);
    Status st = layer.DefineRule(
        "r" + std::to_string(i), cls, "report",
        LayeredAdbms::Coupling::kImmediate,
        [](ClosedDb&, const std::vector<Value>& args) {
          return !args.empty() && args[0].as_int() > 50;
        },
        [](ClosedDb&, const std::vector<Value>&) { return Status::OK(); });
    if (!st.ok()) std::abort();
  }

  if (!layer.Begin().ok()) std::abort();
  auto oid = db->PersistNew("Sensor", {});
  if (!oid.ok()) std::abort();
  int64_t v = 0;
  for (auto _ : state) {
    auto r = layer.WrappedInvoke(*oid, "Sensor", "report", {Value(++v % 100)});
    benchmark::DoNotOptimize(r.ok());
  }
  (void)layer.Abort();
  state.counters["rules"] = n_rules;
  state.counters["journal_writes"] =
      static_cast<double>(layer.journal_writes());
}
BENCHMARK(BM_LayeredAnnounceAndFiring)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
