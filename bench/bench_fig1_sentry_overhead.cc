// F1 — Figure 1's architecture exercised as a measurement: the cost of the
// sentry mechanism (in-line wrappers + meta-bus interest check) in the
// three §6.2 categories, matching the [WSTR93] experiment the paper cites:
//   * unmonitored: plain virtual call, no sentry compiled in;
//   * useless overhead: sentried call, no policy manager interested
//     (reduces to interest probes);
//   * useful overhead: sentried call delivered to 1..5 policy managers
//     (persistence/transaction/indexing/change/rules in Figure 1).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "oodb/meta_bus.h"
#include "oodb/sentry.h"

namespace reach {
namespace {

struct Probe {
  int state = 0;
  void poke(int x) { state += x; }
};

class NullPm : public PolicyManager {
 public:
  std::string name() const override { return "Null PM"; }
  void OnEvent(const SentryEvent& event) override {
    benchmark::DoNotOptimize(event.kind);
  }
};

void BM_UnmonitoredDirectCall(benchmark::State& state) {
  Probe probe;
  for (auto _ : state) {
    probe.poke(1);
    benchmark::DoNotOptimize(probe.state);
  }
}
BENCHMARK(BM_UnmonitoredDirectCall);

void BM_SentryUselessOverhead(benchmark::State& state) {
  // Sentried type, but nobody subscribed: the wrapper performs only the
  // two bus interest probes.
  MetaBus bus;
  Sentried<Probe> probe(&bus, "Probe", Probe{});
  for (auto _ : state) {
    probe.Call("poke", &Probe::poke, 1);
    benchmark::DoNotOptimize(probe.get().state);
  }
  state.counters["useless_announcements"] =
      static_cast<double>(bus.useless_announcements());
}
BENCHMARK(BM_SentryUselessOverhead);

void BM_SentryUsefulOverhead(benchmark::State& state) {
  // 1..5 policy managers plugged into the bus (Figure 1 shows five).
  MetaBus bus;
  std::vector<std::unique_ptr<NullPm>> pms;
  for (int i = 0; i < state.range(0); ++i) {
    pms.push_back(std::make_unique<NullPm>());
    bus.Subscribe(pms.back().get(), SentryKind::kMethodAfter, "Probe",
                  "poke");
  }
  Sentried<Probe> probe(&bus, "Probe", Probe{});
  for (auto _ : state) {
    probe.Call("poke", &Probe::poke, 1);
  }
  state.counters["pms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SentryUsefulOverhead)->DenseRange(1, 5);

void BM_SentryOtherMemberMonitored(benchmark::State& state) {
  // Potentially-useful overhead: the class is monitored, this member is
  // not — the exact-interest table must still reject in O(1).
  MetaBus bus;
  NullPm pm;
  bus.Subscribe(&pm, SentryKind::kMethodAfter, "Probe", "otherMethod");
  Sentried<Probe> probe(&bus, "Probe", Probe{});
  for (auto _ : state) {
    probe.Call("poke", &Probe::poke, 1);
  }
}
BENCHMARK(BM_SentryOtherMemberMonitored);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
