// E5 — cost of the four event consumption policies (§3.4) on a sequence
// composition, as a function of the initiator/terminator ratio (how many
// duplicate initiators pile up before each terminator). Expected shape:
// recent and chronicle stay O(1)-ish per event; continuous and cumulative
// pay for touching every open initiator at each terminator.
#include <benchmark/benchmark.h>

#include "core/events/compositor.h"
#include "core/events/event_registry.h"

namespace reach {
namespace {

void RunPolicy(benchmark::State& state, ConsumptionPolicy policy) {
  int dup = static_cast<int>(state.range(0));  // initiators per terminator
  EventRegistry registry;
  EventTypeId e1 = *registry.RegisterMethodEvent("E1", "C", "m1");
  EventTypeId e2 = *registry.RegisterMethodEvent("E2", "C", "m2");
  auto id = registry.RegisterComposite(
      "X", EventExpr::Seq(EventExpr::Prim(e1), EventExpr::Prim(e2)),
      CompositeScope::kSingleTxn, policy);
  if (!id.ok()) std::abort();

  uint64_t seq = 0;
  auto make = [&](EventTypeId type) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = type;
    occ->sequence = ++seq;
    occ->timestamp = static_cast<Timestamp>(seq * 10);
    occ->txn = 1;
    return occ;
  };

  Compositor compositor(registry.Find(*id));
  std::vector<EventOccurrencePtr> out;
  uint64_t completions = 0;
  for (auto _ : state) {
    for (int i = 0; i < dup; ++i) {
      compositor.Feed(make(e1), &out);
    }
    compositor.Feed(make(e2), &out);
    completions += out.size();
    out.clear();
  }
  state.SetItemsProcessed(state.iterations() * (dup + 1));
  state.counters["initiators_per_terminator"] = dup;
  state.counters["completions_per_round"] =
      state.iterations() > 0
          ? static_cast<double>(completions) /
                static_cast<double>(state.iterations())
          : 0;
}

void BM_Recent(benchmark::State& state) {
  RunPolicy(state, ConsumptionPolicy::kRecent);
}
void BM_Chronicle(benchmark::State& state) {
  RunPolicy(state, ConsumptionPolicy::kChronicle);
}
void BM_Continuous(benchmark::State& state) {
  RunPolicy(state, ConsumptionPolicy::kContinuous);
}
void BM_Cumulative(benchmark::State& state) {
  RunPolicy(state, ConsumptionPolicy::kCumulative);
}

BENCHMARK(BM_Recent)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_Chronicle)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_Continuous)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_Cumulative)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
