// Background writeback — the acceptance benchmark for the non-blocking
// buffer pool (docs/STORAGE.md "Background writeback"): N threads run a
// mixed update/read workload whose working set is ~4x the frame budget, so
// every miss must evict and almost every frame is dirty. With the cleaner
// off (writeback:0) each eviction pays the historical synchronous log
// force + page write under the shard mutex; with it on (writeback:1) the
// writeback thread batches those writes out of band and evictions find
// clean victims.
//
// CI gates the writeback:1 / writeback:0 wall-clock ratio at 4 threads via
// RATIO_PAIRS in scripts/bench_compare.py: absolute times track disk and
// machine speed, but the cleaner losing its edge over synchronous eviction
// writes is a property of the code. `sync_fallbacks` should print ~0 for
// writeback:1 runs (a large value means the thread can't keep up and the
// numbers converge toward writeback:0).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

constexpr size_t kPoolPages = 64;
constexpr int kObjects = 1024;  // ~900B payloads: ~4 pages of pool per 16

std::string ScratchBase(const std::string& tag) {
  const char* dir = std::getenv("REACH_BENCH_DIR");
  std::filesystem::path base =
      std::filesystem::path(dir != nullptr ? dir : ".") /
      "bench_writeback_scratch";
  std::filesystem::create_directories(base);
  std::string path = (base / tag).string();
  std::filesystem::remove(path + ".db");
  std::filesystem::remove(path + ".wal");
  return path;
}

// Shared across the benchmark's threads; thread 0 owns setup/teardown and
// the google-benchmark start barrier keeps the others out until it's done.
struct SharedDb {
  std::unique_ptr<StorageManager> sm;
  std::vector<Oid> oids;
};
SharedDb g_db;

void BM_DirtyPoolRead(benchmark::State& state) {
  if (state.thread_index() == 0) {
    StorageOptions opts;
    opts.buffer_pool_pages = kPoolPages;
    opts.writeback = static_cast<int>(state.range(0));
    opts.writeback_watermark = 30;
    auto sm = StorageManager::Open(
        ScratchBase("wb" + std::to_string(state.range(0)) + "_t" +
                    std::to_string(state.threads())),
        opts);
    if (!sm.ok()) std::abort();
    g_db.sm = std::move(*sm);
    TransactionManager tm(g_db.sm.get());
    auto txn = tm.Begin();
    if (!txn.ok()) std::abort();
    std::string payload(900, 'd');
    g_db.oids.clear();
    for (int i = 0; i < kObjects; ++i) {
      auto oid = g_db.sm->objects()->Insert(*txn, payload);
      if (!oid.ok()) std::abort();
      g_db.oids.push_back(*oid);
    }
    if (!tm.Commit(*txn).ok()) std::abort();
  }
  // One long-lived uncommitted transaction per thread: the loop measures
  // eviction behaviour, not commit fsyncs. Each thread updates its own
  // stripe of objects (no logical write conflicts) and reads across the
  // whole set, so misses constantly evict frames other threads dirtied.
  // g_db must not be touched before the timing loop: only the loop itself
  // is behind the start barrier that orders thread 0's setup.
  const TxnId txn = static_cast<TxnId>(1000 + state.thread_index());
  const size_t stripe = static_cast<size_t>(kObjects) /
                        static_cast<size_t>(state.threads());
  const size_t stripe_base = static_cast<size_t>(state.thread_index()) * stripe;
  std::string update(900, 'u');
  size_t i = static_cast<size_t>(state.thread_index()) * 131;
  bool begun = false;
  for (auto _ : state) {
    if (!begun) {
      if (!g_db.sm->LogBegin(txn).ok()) std::abort();
      begun = true;
    }
    const Oid& mine = g_db.oids[stripe_base + i % stripe];
    benchmark::DoNotOptimize(g_db.sm->objects()->Update(txn, mine, update));
    for (int r = 0; r < 3; ++r) {
      const Oid& oid = g_db.oids[(i * 7 + r * 311) % g_db.oids.size()];
      benchmark::DoNotOptimize(g_db.sm->objects()->Read(oid));
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 4);
  if (state.thread_index() == 0) {
    auto stats = g_db.sm->buffer_pool()->writeback_stats();
    state.counters["wb_pages"] =
        benchmark::Counter(static_cast<double>(stats.pages));
    state.counters["sync_fallbacks"] =
        benchmark::Counter(static_cast<double>(stats.sync_fallbacks));
    state.counters["dirty_ratio"] =
        benchmark::Counter(g_db.sm->buffer_pool()->dirty_ratio());
    g_db.sm.reset();
  }
}

BENCHMARK(BM_DirtyPoolRead)
    ->ArgName("writeback")
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
