// Group commit — the acceptance benchmark for the batched WAL flusher
// (docs/STORAGE.md): N committer threads run insert+commit transactions
// against one StorageManager and the commit path is swept across batch
// policies. `items_per_second` is commits/sec; the `fsyncs_per_txn` counter
// is the piggybacking ratio (1.0 = every commit pays its own fsync). The
// bar: grouped commit at 16 threads sustains >= 3x the direct (fsync per
// commit) rate with fsyncs_per_txn < 0.5.
//
// Scratch files live under the working directory by default — commit cost
// is fsync-dominated and /tmp is frequently tmpfs, where fsync is a no-op
// and every policy looks identical. Set REACH_BENCH_DIR to aim elsewhere.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

std::string ScratchBase(const std::string& tag) {
  const char* dir = std::getenv("REACH_BENCH_DIR");
  std::filesystem::path base =
      std::filesystem::path(dir != nullptr ? dir : ".") / "bench_gc_scratch";
  std::filesystem::create_directories(base);
  std::string path = (base / tag).string();
  std::filesystem::remove(path + ".db");
  std::filesystem::remove(path + ".wal");
  return path;
}

// Shared across the benchmark's threads; thread 0 owns setup/teardown and
// the google-benchmark start barrier keeps the others out until it's done.
struct SharedDb {
  std::unique_ptr<StorageManager> sm;
  std::unique_ptr<TransactionManager> tm;
  uint64_t fsync_base = 0;
};
SharedDb g_db;

void CommitLoop(benchmark::State& state, const WalOptions& wal,
                const char* tag) {
  auto& reg = obs::MetricsRegistry::Instance();
  if (state.thread_index() == 0) {
    reg.SetEnabled(true);
    StorageOptions opts;
    opts.wal = wal;
    auto sm = StorageManager::Open(ScratchBase(tag), opts);
    if (!sm.ok()) std::abort();
    g_db.sm = std::move(*sm);
    g_db.tm = std::make_unique<TransactionManager>(g_db.sm.get());
    g_db.fsync_base = reg.counter(obs::kWalFsyncCount)->value();
  }
  std::string payload(128, 'c');
  for (auto _ : state) {
    auto txn = g_db.tm->Begin();
    if (!txn.ok()) std::abort();
    benchmark::DoNotOptimize(g_db.sm->objects()->Insert(*txn, payload));
    if (!g_db.tm->Commit(*txn).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    uint64_t fsyncs =
        reg.counter(obs::kWalFsyncCount)->value() - g_db.fsync_base;
    double commits =
        static_cast<double>(state.iterations()) * state.threads();
    state.counters["fsyncs_per_txn"] = benchmark::Counter(
        commits > 0 ? static_cast<double>(fsyncs) / commits : 0.0);
    g_db.tm.reset();
    g_db.sm.reset();
  }
}

void BM_GroupCommit_Direct(benchmark::State& state) {
  // Baseline: the pre-group-commit path, one fsync per commit.
  WalOptions wal;
  wal.group_commit = false;
  CommitLoop(state, wal, "direct");
}

void BM_GroupCommit_Grouped(benchmark::State& state) {
  // Default policy: flush immediately when the flusher is idle, coalesce
  // whatever arrives while an fsync is in flight.
  WalOptions wal;
  wal.group_commit = true;
  CommitLoop(state, wal, "grouped");
}

void BM_GroupCommit_GroupedDelay(benchmark::State& state) {
  // Bounded wait: after a back-to-back batch the flusher lingers up to
  // 100us to widen the group, trading commit latency for fewer fsyncs.
  WalOptions wal;
  wal.group_commit = true;
  wal.max_batch_delay_us = 100;
  CommitLoop(state, wal, "grouped_delay");
}

BENCHMARK(BM_GroupCommit_Direct)
    ->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroupCommit_Grouped)
    ->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroupCommit_GroupedDelay)
    ->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
