// F2 — Figure 2's information flow measured end to end:
//   method call -> sentry -> method ECA-manager -> {rule firing,
//   propagation to composite ECA-managers} -> event objects.
// Reports the go-ahead latency of a monitored method call with (a) no
// rules, (b) an immediate rule, (c) a deferred rule, (d) a downstream
// compositor (asynchronous: should barely affect the go-ahead).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/reach/reach_db.h"

namespace reach {
namespace {

std::unique_ptr<ReachDb> OpenFresh(const std::string& tag,
                                   bool async_composition = true) {
  std::string base =
      (std::filesystem::temp_directory_path() / ("reach_f2_" + tag)).string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  ReachOptions options;
  options.events.async_composition = async_composition;
  auto db = ReachDb::Open(base, std::move(options));
  if (!db.ok()) std::abort();
  Status st = (*db)->RegisterClass(
      ClassBuilder("Sensor")
          .Attribute("v", ValueType::kInt, Value(0))
          .Method("report", [](Session&, DbObject&,
                               const std::vector<Value>&) -> Result<Value> {
            return Value();
          }));
  if (!st.ok()) std::abort();
  return std::move(*db);
}

Oid MakeSensor(ReachDb* db) {
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  auto oid = s.PersistNew("Sensor", {});
  if (!oid.ok() || !s.Commit().ok()) std::abort();
  return *oid;
}

void BM_MethodCall_NoEventRegistered(benchmark::State& state) {
  auto db = OpenFresh("none");
  Oid sensor = MakeSensor(db.get());
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(sensor, "report", {Value(1)}));
  }
  (void)s.Abort();
}
BENCHMARK(BM_MethodCall_NoEventRegistered);

void BM_MethodCall_EventDetectedNoRules(benchmark::State& state) {
  auto db = OpenFresh("detect");
  (void)db->events()->DefineMethodEvent("report_ev", "Sensor", "report");
  Oid sensor = MakeSensor(db.get());
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(sensor, "report", {Value(1)}));
  }
  state.counters["events"] =
      static_cast<double>(db->events()->signaled_count());
  (void)s.Abort();
}
BENCHMARK(BM_MethodCall_EventDetectedNoRules);

void BM_MethodCall_ImmediateRule(benchmark::State& state) {
  auto db = OpenFresh("imm");
  auto ev = db->events()->DefineMethodEvent("report_ev", "Sensor", "report");
  RuleSpec spec;
  spec.name = "noop";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [](Session&, const EventOccurrence&) { return Status::OK(); };
  if (!db->rules()->DefineRule(std::move(spec)).ok()) std::abort();
  Oid sensor = MakeSensor(db.get());
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(sensor, "report", {Value(1)}));
  }
  (void)s.Abort();
}
BENCHMARK(BM_MethodCall_ImmediateRule);

void BM_MethodCall_DeferredRuleEnqueueOnly(benchmark::State& state) {
  auto db = OpenFresh("def");
  auto ev = db->events()->DefineMethodEvent("report_ev", "Sensor", "report");
  RuleSpec spec;
  spec.name = "noop";
  spec.event = *ev;
  spec.coupling = CouplingMode::kDeferred;
  spec.action = [](Session&, const EventOccurrence&) { return Status::OK(); };
  if (!db->rules()->DefineRule(std::move(spec)).ok()) std::abort();
  Oid sensor = MakeSensor(db.get());
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(sensor, "report", {Value(1)}));
  }
  (void)s.Abort();
}
BENCHMARK(BM_MethodCall_DeferredRuleEnqueueOnly);

void BM_MethodCall_WithAsyncCompositor(benchmark::State& state) {
  // A downstream compositor consumes the event, but composition is
  // asynchronous: the go-ahead should cost roughly as much as detection
  // alone (the §6.4 design point).
  auto db = OpenFresh("comp");
  auto ev = db->events()->DefineMethodEvent("report_ev", "Sensor", "report");
  (void)db->events()->DefineComposite(
      "pair", EventExpr::Seq(EventExpr::Prim(*ev), EventExpr::Prim(*ev)),
      CompositeScope::kSingleTxn);
  Oid sensor = MakeSensor(db.get());
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(sensor, "report", {Value(1)}));
  }
  state.counters["composites"] =
      static_cast<double>(db->events()->composite_count());
  (void)s.Abort();
  db->Drain();
}
BENCHMARK(BM_MethodCall_WithAsyncCompositor);

void BM_FullTxn_DetectFireCommit(benchmark::State& state) {
  // Whole-pipeline throughput: one transaction per iteration with a method
  // event, an immediate rule, and a durable commit.
  auto db = OpenFresh("txn");
  auto ev = db->events()->DefineMethodEvent("report_ev", "Sensor", "report");
  RuleSpec spec;
  spec.name = "noop";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [](Session&, const EventOccurrence&) { return Status::OK(); };
  if (!db->rules()->DefineRule(std::move(spec)).ok()) std::abort();
  Oid sensor = MakeSensor(db.get());
  Session s(db->database());
  for (auto _ : state) {
    if (!s.Begin().ok()) std::abort();
    benchmark::DoNotOptimize(s.Invoke(sensor, "report", {Value(1)}));
    if (!s.Commit().ok()) std::abort();
  }
}
BENCHMARK(BM_FullTxn_DetectFireCommit);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
