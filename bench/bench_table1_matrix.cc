// T1 — regenerates Table 1: "Supported combinations of event categories
// and coupling modes". The matrix is not hard-coded: each cell is produced
// by actually registering an event of that category plus a rule with that
// coupling mode against a live ReachDb, and reporting whether admission
// succeeded. The printed table should match the paper's.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/reach/reach_db.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace reach {
namespace {

struct Column {
  const char* header;
  EventTypeId event;
};

int Run() {
  std::string base = std::filesystem::temp_directory_path() /
                     "reach_bench_table1";
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  auto db_or = ReachDb::Open(base);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto& db = *db_or;
  Status st = db->RegisterClass(ClassBuilder("C")
                                    .Attribute("a", ValueType::kInt, Value(0))
                                    .Method("m", [](Session&, DbObject&,
                                                    const std::vector<Value>&)
                                                -> Result<Value> {
                                      return Value();
                                    }));
  if (!st.ok()) return 1;

  // One representative event per Table 1 column.
  EventTypeId method_ev = *db->events()->DefineMethodEvent("m_ev", "C", "m");
  EventTypeId temporal_ev =
      *db->events()->DefineAbsoluteEvent("t_ev", 1LL << 60);
  EventTypeId comp1_ev = *db->events()->DefineComposite(
      "c1_ev", EventExpr::Seq(EventExpr::Prim(method_ev),
                              EventExpr::Prim(method_ev)),
      CompositeScope::kSingleTxn);
  EventTypeId compn_ev = *db->events()->DefineComposite(
      "cn_ev", EventExpr::Seq(EventExpr::Prim(method_ev),
                              EventExpr::Prim(method_ev)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
      /*validity=*/1000000);

  std::vector<Column> columns = {
      {"Single Method", method_ev},
      {"Purely Temporal", temporal_ev},
      {"Composite 1 TX", comp1_ev},
      {"Composite n TXs", compn_ev},
  };
  std::vector<std::pair<const char*, CouplingMode>> modes = {
      {"Immediate", CouplingMode::kImmediate},
      {"Deferred", CouplingMode::kDeferred},
      {"Detached", CouplingMode::kDetached},
      {"Par.caus.dep.", CouplingMode::kParallelCausallyDependent},
      {"Seq.caus.dep.", CouplingMode::kSequentialCausallyDependent},
      {"Exc.caus.dep.", CouplingMode::kExclusiveCausallyDependent},
  };

  std::printf(
      "Table 1: Supported combinations of event categories and coupling "
      "modes\n(each cell = live rule-admission outcome, Y/N)\n\n");
  std::printf("%-15s", "");
  for (const Column& c : columns) std::printf("%-18s", c.header);
  std::printf("\n");

  int rule_seq = 0;
  for (const auto& [mode_name, mode] : modes) {
    std::printf("%-15s", mode_name);
    for (const Column& c : columns) {
      RuleSpec spec;
      spec.name = "probe" + std::to_string(++rule_seq);
      spec.event = c.event;
      spec.coupling = mode;
      spec.action = [](Session&, const EventOccurrence&) {
        return Status::OK();
      };
      auto admitted = db->rules()->DefineRule(std::move(spec));
      std::printf("%-18s", admitted.ok() ? "Y" : "N");
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper: row Immediate = Y N (N) N; Deferred = Y N Y N; Detached "
      "and the three\ncausally dependent modes = Y on everything except "
      "purely temporal events\n(detached itself also supports temporal "
      "events).\n");

  // Fire the admitted rules with a real workload so the pipeline spans and
  // per-mode rule latencies printed next to the matrix are measured on this
  // machine, not claimed. Every method invocation of `m` triggers the six
  // probe rules of the "Single Method" column; invoking twice per
  // transaction also completes the single-txn composite, and consecutive
  // transactions the cross-txn one.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  reg.SetEnabled(true);
  reg.ResetAll();
  for (int txn = 0; txn < 20; ++txn) {
    Session s(db->database());
    if (!s.Begin().ok()) break;
    auto oid = s.PersistNew("C", {});
    if (oid.ok()) {
      for (int i = 0; i < 5; ++i) (void)s.Invoke(*oid, "m", {});
    }
    if (!s.Commit().ok()) (void)s.AbortAll();
  }
  db->Drain();
  db->rules()->WaitDetachedIdle();

  auto print_hist = [&reg](const char* label, const std::string& name) {
    obs::HistogramSnapshot snap = reg.histogram(name)->Snapshot();
    std::printf("  %-34s count=%-7llu p50=%-9llu p95=%-9llu max=%llu\n",
                label, static_cast<unsigned long long>(snap.count),
                static_cast<unsigned long long>(snap.ValueAtPercentile(50)),
                static_cast<unsigned long long>(snap.ValueAtPercentile(95)),
                static_cast<unsigned long long>(snap.max));
  };
  std::printf("\nMeasured pipeline spans (ns) for the probe workload:\n");
  print_hist("sentry_to_signal", obs::kSpanSentryToSignal);
  print_hist("signal_to_dispatch", obs::kSpanSignalToDispatch);
  print_hist("signal_to_compose", obs::kSpanSignalToCompose);
  std::printf("\nMeasured rule execution time (ns) by coupling mode:\n");
  for (const auto& [mode_name, mode] : modes) {
    print_hist(mode_name, std::string(obs::kRulesExecNsPrefix) +
                              CouplingModeName(mode));
  }
  return 0;
}

}  // namespace
}  // namespace reach

int main() { return reach::Run(); }
