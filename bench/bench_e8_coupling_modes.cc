// E8 — per-coupling-mode cost: the time from raising the triggering method
// event until the rule's action effect is durably visible, for each of the
// six REACH coupling modes. Expected shape: immediate < deferred (pays the
// commit barrier) < detached family (independent transaction + handoff);
// the causally dependent modes add outcome-waiting on top of detached.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/reach/reach_db.h"

namespace reach {
namespace {

struct Fixture {
  std::unique_ptr<ReachDb> db;
  Oid trigger_obj;
  Oid sink_obj;
  EventTypeId event;

  explicit Fixture(const std::string& tag) {
    std::string base =
        (std::filesystem::temp_directory_path() / ("reach_e8_" + tag))
            .string();
    std::filesystem::remove(base + ".db");
    std::filesystem::remove(base + ".wal");
    auto opened = ReachDb::Open(base);
    if (!opened.ok()) std::abort();
    db = std::move(*opened);
    Status st = db->RegisterClass(
        ClassBuilder("T")
            .Attribute("n", ValueType::kInt, Value(0))
            .Method("fire", [](Session&, DbObject&,
                               const std::vector<Value>&) -> Result<Value> {
              return Value();
            }));
    if (!st.ok()) std::abort();
    Session s(db->database());
    if (!s.Begin().ok()) std::abort();
    trigger_obj = *s.PersistNew("T", {});
    sink_obj = *s.PersistNew("T", {});
    if (!s.Commit().ok()) std::abort();
    event = *db->events()->DefineMethodEvent("fire_ev", "T", "fire");
  }

  void AddRule(CouplingMode mode) {
    RuleSpec spec;
    spec.name = "measured";
    spec.event = event;
    spec.coupling = mode;
    Oid sink = sink_obj;
    spec.action = [sink](Session& s, const EventOccurrence&) -> Status {
      auto n = s.GetAttr(sink, "n");
      if (!n.ok()) return n.status();
      return s.SetAttr(sink, "n", Value(n->as_int() + 1));
    };
    if (!db->rules()->DefineRule(std::move(spec)).ok()) std::abort();
  }
};

void RunMode(benchmark::State& state, CouplingMode mode,
             const std::string& tag) {
  Fixture fx(tag);
  fx.AddRule(mode);
  bool detached_family = mode != CouplingMode::kImmediate &&
                         mode != CouplingMode::kDeferred;
  Session s(fx.db->database());
  for (auto _ : state) {
    if (!s.Begin().ok()) std::abort();
    benchmark::DoNotOptimize(s.Invoke(fx.trigger_obj, "fire"));
    if (!s.Commit().ok()) std::abort();
    if (detached_family) fx.db->rules()->WaitDetachedIdle();
  }
  auto stats = fx.db->rules()->StatsOf("measured");
  state.counters["actions_run"] =
      stats.ok() ? static_cast<double>(stats->actions_run) : -1;
}

void BM_Immediate(benchmark::State& state) {
  RunMode(state, CouplingMode::kImmediate, "imm");
}
void BM_Deferred(benchmark::State& state) {
  RunMode(state, CouplingMode::kDeferred, "def");
}
void BM_Detached(benchmark::State& state) {
  RunMode(state, CouplingMode::kDetached, "det");
}
void BM_ParallelCausallyDependent(benchmark::State& state) {
  RunMode(state, CouplingMode::kParallelCausallyDependent, "par");
}
void BM_SequentialCausallyDependent(benchmark::State& state) {
  RunMode(state, CouplingMode::kSequentialCausallyDependent, "seq");
}
void BM_ExclusiveCausallyDependent(benchmark::State& state) {
  // Exclusive rules only commit when the trigger aborts; measure the
  // trigger-abort path where the contingency runs.
  Fixture fx("exc");
  fx.AddRule(CouplingMode::kExclusiveCausallyDependent);
  Session s(fx.db->database());
  for (auto _ : state) {
    if (!s.Begin().ok()) std::abort();
    benchmark::DoNotOptimize(s.Invoke(fx.trigger_obj, "fire"));
    if (!s.Abort().ok()) std::abort();
    fx.db->rules()->WaitDetachedIdle();
  }
  auto stats = fx.db->rules()->StatsOf("measured");
  state.counters["actions_run"] =
      stats.ok() ? static_cast<double>(stats->actions_run) : -1;
}

BENCHMARK(BM_Immediate)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Deferred)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Detached)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ParallelCausallyDependent)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialCausallyDependent)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ExclusiveCausallyDependent)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
