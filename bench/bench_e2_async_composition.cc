// E2 — why immediate coupling is barred for composite events (§3.2/§6.4):
// the go-ahead latency of a method event when composition runs
// asynchronously vs when every event must wait for the composers ("wait
// for negative acknowledgements"). Sweeps the number of composite event
// types containing the primitive. Expected shape: blocking latency grows
// with the composite count; asynchronous stays near-flat.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/reach/reach_db.h"

namespace reach {
namespace {

std::unique_ptr<ReachDb> Open(bool async, int n_composites,
                              const std::string& tag) {
  std::string base =
      (std::filesystem::temp_directory_path() / ("reach_e2_" + tag)).string();
  std::filesystem::remove(base + ".db");
  std::filesystem::remove(base + ".wal");
  ReachOptions options;
  options.events.async_composition = async;
  options.events.composition_threads = 2;
  auto db = ReachDb::Open(base, std::move(options));
  if (!db.ok()) std::abort();
  Status st = (*db)->RegisterClass(
      ClassBuilder("Feed")
          .Attribute("v", ValueType::kInt, Value(0))
          .Method("emit", [](Session&, DbObject&,
                             const std::vector<Value>&) -> Result<Value> {
            return Value();
          }));
  if (!st.ok()) std::abort();
  auto ev = (*db)->events()->DefineMethodEvent("emit_ev", "Feed", "emit");
  auto other = (*db)->events()->DefineMethodEvent("other_ev", "Feed", "other");
  for (int i = 0; i < n_composites; ++i) {
    // Sequences that never complete (the second leg never occurs), so the
    // compositors keep buffering — the worst case for blocking mode.
    auto id = (*db)->events()->DefineComposite(
        "comp" + std::to_string(i),
        EventExpr::Seq(EventExpr::Prim(*ev), EventExpr::Prim(*other)),
        CompositeScope::kSingleTxn);
    if (!id.ok()) std::abort();
  }
  return std::move(*db);
}

void RunBody(benchmark::State& state, bool async) {
  int n = static_cast<int>(state.range(0));
  auto db = Open(async, n,
                 (async ? "async_" : "block_") + std::to_string(n));
  Session s(db->database());
  if (!s.Begin().ok()) std::abort();
  auto oid = s.PersistNew("Feed", {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Invoke(*oid, "emit"));
  }
  state.counters["composite_types"] = n;
  (void)s.Abort();
  db->Drain();
}

void BM_BlockingComposition(benchmark::State& state) { RunBody(state, false); }
void BM_AsyncComposition(benchmark::State& state) { RunBody(state, true); }

BENCHMARK(BM_BlockingComposition)
    ->Arg(1)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AsyncComposition)
    ->Arg(1)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
