// Cost of a compiled-in fault point when injection is disabled — the number
// that justifies leaving REACH_FAULT_POINT in production I/O paths. The
// disabled gate is one relaxed atomic load; this bench pins that claim
// against a baseline function of identical shape with no hook, and also
// measures the armed-but-not-firing path (registry lock + countdown) so the
// sweep tests' overhead is visible too.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/status.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {
namespace {

// noinline keeps both functions honest: without it the optimizer can hoist
// the (constant-false) gate out of the benchmark loop entirely and the
// comparison measures nothing.
__attribute__((noinline)) Status PlainOp(uint64_t* acc) {
  *acc += 1;
  return Status::OK();
}

__attribute__((noinline)) Status HookedOp(uint64_t* acc) {
  REACH_FAULT_POINT(faults::kDiskWritePage);
  *acc += 1;
  return Status::OK();
}

void BM_NoFaultPoint(benchmark::State& state) {
  FaultRegistry::Instance().DisarmAll();
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlainOp(&acc));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NoFaultPoint);

void BM_FaultPointDisabled(benchmark::State& state) {
  FaultRegistry::Instance().DisarmAll();
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HookedOp(&acc));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_FaultPointDisabled);

void BM_FaultPointArmedElsewhere(benchmark::State& state) {
  // The global gate is open because *some other* point is armed: every hit
  // now takes the registry lock and does a map lookup. This is the price
  // the sweep tests pay, never production.
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.ArmError(faults::kTxnBegin, Status::Code::kBusy,
               /*nth=*/1'000'000'000'000ull);
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HookedOp(&acc));
  }
  benchmark::DoNotOptimize(acc);
  reg.DisarmAll();
}
BENCHMARK(BM_FaultPointArmedElsewhere);

void BM_FaultPointArmedCountdown(benchmark::State& state) {
  // Worst case: the measured point itself is armed with a far-future nth —
  // lock, lookup, and countdown decrement on every hit.
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.ArmError(faults::kDiskWritePage, Status::Code::kIoError,
               /*nth=*/1'000'000'000'000ull);
  uint64_t acc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HookedOp(&acc));
  }
  benchmark::DoNotOptimize(acc);
  reg.DisarmAll();
}
BENCHMARK(BM_FaultPointArmedCountdown);

}  // namespace
}  // namespace reach

BENCHMARK_MAIN();
